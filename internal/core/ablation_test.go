package core

import (
	"math/rand"
	"testing"
)

// Ablations for the §7 design choices: each test checks the *directional*
// effect of a mechanism by building two filters that differ in exactly one
// knob and measuring FPR on the workload the mechanism targets.

// measureRangeFPR builds a filter from cfg, inserts n random keys and
// probes empty ranges of the given width.
func measureRangeFPR(t *testing.T, cfg Config, n int, width uint64, probes int, seed int64) float64 {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Insert(keys[i])
	}
	sortU64(keys)
	fp, done := 0, 0
	for done < probes {
		lo := rng.Uint64()
		if lo > ^uint64(0)-width {
			continue
		}
		hi := lo + width - 1
		if hasKeyInRange(keys, lo, hi) {
			continue
		}
		done++
		if f.MayContainRange(lo, hi) {
			fp++
		}
	}
	return float64(fp) / float64(probes)
}

// TestAblationExactLayer: for very large ranges, adding the exact top
// bitmap (same total memory) must cut the FPR drastically — the §7
// "Memory Management" motivation.
func TestAblationExactLayer(t *testing.T) {
	const n = 30000
	const width = uint64(1) << 36
	// Without exact layer: basic filter, all memory in one segment.
	basic := BasicConfig(n, 18)
	fprBasic := measureRangeFPR(t, basic, n, width, 1500, 42)

	// With exact layer at level 36 (bitmap 2^28 bits is too big for this
	// n; use domain knowledge: pick exact level so the bitmap is ~40% of
	// memory): total = 18n = 540k bits; exact 2^18 = 262k bits at level 46.
	withExact := Config{
		Domain:    64,
		Deltas:    deltaVector(46),
		SegBits:   []uint64{540000 - (1 << 18)},
		Exact:     true,
		SegmentOf: nil,
	}
	withExact.SegBits[0] = (withExact.SegBits[0] + 63) &^ 63
	fprExact := measureRangeFPR(t, withExact, n, width, 1500, 42)

	if fprExact >= fprBasic {
		t.Errorf("exact layer did not help huge ranges: with=%.3f without=%.3f", fprExact, fprBasic)
	}
	if fprExact > 0.2 {
		t.Errorf("exact-layer FPR %.3f still high for width 2^36", fprExact)
	}
}

// TestAblationReplicatedHashFunctions: replicating the top layer's hash
// function reduces the FPR of queries that are decided on the upper layers
// (large dyadic ranges), at unchanged memory.
func TestAblationReplicatedHashFunctions(t *testing.T) {
	const n = 30000
	base := Config{
		Domain:  64,
		Deltas:  []int{7, 7, 7, 7, 7},
		SegBits: []uint64{uint64(n) * 18 &^ 63},
	}
	withReplicas := base
	withReplicas.Replicas = []int{1, 1, 1, 1, 2}

	// Ranges of 2^28 are covered by layer-4 dyadic intervals (level 28):
	// exactly where the replica adds error correction.
	const width = uint64(1) << 28
	fprBase := measureRangeFPR(t, base, n, width, 2000, 43)
	fprRep := measureRangeFPR(t, withReplicas, n, width, 2000, 43)
	if fprRep >= fprBase {
		t.Errorf("top-layer replica did not reduce large-range FPR: with=%.4f without=%.4f", fprRep, fprBase)
	}
}

// TestAblationDeltaGranularity: smaller Δ on the upper layers (the
// advisor's variable-distance vector) beats uniform Δ = 7 for large
// ranges, because DIs grow less abruptly between levels.
func TestAblationDeltaGranularity(t *testing.T) {
	const n = 30000
	m := uint64(n) * 18 &^ 63
	uniform := Config{Domain: 64, Deltas: []int{7, 7, 7, 7, 7}, SegBits: []uint64{m}}        // levels to 35
	variable := Config{Domain: 64, Deltas: []int{7, 7, 7, 7, 4, 2, 2}, SegBits: []uint64{m}} // levels to 36, finer top
	const width = uint64(1) << 33
	fprU := measureRangeFPR(t, uniform, n, width, 1500, 44)
	fprV := measureRangeFPR(t, variable, n, width, 1500, 44)
	if fprV >= fprU {
		t.Errorf("variable Δ did not help: variable=%.3f uniform=%.3f", fprV, fprU)
	}
}

// TestAblationPermuteWordsOnDegenerateData: on the §3.2 degenerate
// distribution the plain PMHF collapses every layer onto one in-word
// offset, inflating the point FPR; PermuteWords restores it.
func TestAblationPermuteWordsOnDegenerateData(t *testing.T) {
	// The fully degenerate §3.2 universe for Δ = 7: every layer's offset
	// bits hold λ = 5 and only the inter-word bits (positions iΔ+6) vary —
	// 2^10 possible keys including bit 63. Insert half the universe, probe
	// the other half: without permutation every layer writes offset 5 of
	// its word, so occupied words answer any degenerate probe positively.
	universe := make([]uint64, 0, 1024)
	for bits := 0; bits < 1024; bits++ {
		var x uint64
		for layer := 0; layer < 9; layer++ {
			x |= 5 << (layer * 7)
			if bits&(1<<layer) != 0 {
				x |= 1 << (layer*7 + 6)
			}
		}
		if bits&(1<<9) != 0 {
			x |= 1 << 63
		}
		universe = append(universe, x)
	}
	rand.New(rand.NewSource(45)).Shuffle(len(universe), func(i, j int) {
		universe[i], universe[j] = universe[j], universe[i]
	})
	insert, probe := universe[:512], universe[512:]
	measure := func(permute bool) float64 {
		// Generous memory keeps the filter below the degenerate
		// saturation point so the ×2 capacity of the orientation split is
		// visible; at 12 bits/key both variants saturate to FPR 1.
		cfg := BasicConfig(512, 64)
		cfg.PermuteWords = permute
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range insert {
			f.Insert(k)
		}
		fp := 0
		for _, y := range probe {
			if f.MayContain(y) {
				fp++
			}
		}
		return float64(fp) / float64(len(probe))
	}
	plain := measure(false)
	permuted := measure(true)
	if permuted >= plain {
		t.Errorf("PermuteWords did not reduce degenerate FPR: with=%.3f without=%.3f", permuted, plain)
	}
	if plain < 0.2 {
		t.Errorf("degenerate universe FPR %.3f unexpectedly low without permutation", plain)
	}
}

// Benchmarks for the same knobs: what each mechanism costs per probe.

func benchRange(b *testing.B, cfg Config, width uint64) {
	f, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1<<18; i++ {
		f.Insert(rng.Uint64())
	}
	b.ResetTimer()
	acc := false
	for i := 0; i < b.N; i++ {
		lo := uint64(i) * 0x9e3779b97f4a7c15
		hi := lo + width - 1
		if hi < lo {
			hi = ^uint64(0)
		}
		acc = acc != f.MayContainRange(lo, hi)
	}
	_ = acc
}

// BenchmarkAblationPMHFWordSize contrasts Δ = 7 (64-bit PMHF words, one
// masked access per run) against Δ = 1 (single-bit words — prefix hashing
// without the piecewise-monotone trick, every dyadic interval probed
// individually). The gap is the PMHF contribution.
func BenchmarkAblationPMHFWordSize(b *testing.B) {
	m := uint64(1<<18) * 16
	b.Run("delta7-pmhf", func(b *testing.B) {
		benchRange(b, Config{Domain: 64, Deltas: []int{7, 7, 7, 7, 7, 7}, SegBits: []uint64{m}}, 1<<16)
	})
	b.Run("delta1-bitwise", func(b *testing.B) {
		deltas := make([]int, 42)
		for i := range deltas {
			deltas[i] = 1
		}
		benchRange(b, Config{Domain: 64, Deltas: deltas, SegBits: []uint64{m}}, 1<<16)
	})
}

// BenchmarkAblationReplicas measures the probe cost of the second hash
// function on the top layer.
func BenchmarkAblationReplicas(b *testing.B) {
	m := uint64(1<<18) * 16
	base := Config{Domain: 64, Deltas: []int{7, 7, 7, 7, 7}, SegBits: []uint64{m}}
	b.Run("r=1", func(b *testing.B) { benchRange(b, base, 1<<20) })
	rep := base
	rep.Replicas = []int{1, 1, 1, 1, 2}
	b.Run("r=2-top", func(b *testing.B) { benchRange(b, rep, 1<<20) })
}

// BenchmarkAblationPermute measures the bit-reversal overhead.
func BenchmarkAblationPermute(b *testing.B) {
	cfg := BasicConfig(1<<18, 16)
	b.Run("plain", func(b *testing.B) { benchRange(b, cfg, 1<<14) })
	perm := cfg
	perm.PermuteWords = true
	b.Run("permuted", func(b *testing.B) { benchRange(b, perm, 1<<14) })
}

// BenchmarkAblationExact measures the exact-bitmap path for huge ranges.
func BenchmarkAblationExact(b *testing.B) {
	m := uint64(1<<18) * 18
	b.Run("basic", func(b *testing.B) {
		benchRange(b, Config{Domain: 64, Deltas: []int{7, 7, 7, 7, 7}, SegBits: []uint64{m}}, 1<<34)
	})
	b.Run("exact-top", func(b *testing.B) {
		benchRange(b, Config{Domain: 64, Deltas: deltaVector(44), Exact: true,
			SegBits: []uint64{m - 1<<20}}, 1<<34)
	})
}
