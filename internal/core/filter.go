package core

import (
	"fmt"
	"math/bits"

	"repro/internal/hashutil"
)

// hashFunc maps a layer's hash input (the key prefix above the word offset
// bits) to a raw 64-bit hash; the filter reduces it modulo the layer's word
// count. It is overridable so tests can pin the paper's worked examples
// (Fig. 3/4 use h_i(x) = a_i + b_i·x).
type hashFunc func(layer, replica int, g uint64) uint64

// Filter is a bloomRF point-range filter. It supports concurrent Insert and
// MayContain* calls without external locking. Create one with New and keep
// using it while data streams in — unlike trie-based point-range filters,
// bloomRF does not need the key set in advance (paper Problem 2).
type Filter struct {
	cfg    Config
	k      int
	domain uint

	// Per-layer derived layout (index = layer, bottom-up).
	levels   []uint    // ℓ_i
	wshift   []uint    // Δ_i − 1: log2 of word size in bits
	segID    []int     // probabilistic segment index
	nwords   []uint64  // number of W_i-bit words in the layer's segment
	mods     []modulus // precomputed h mod nwords reducers (batch paths)
	replicas []int
	seeds    [][]uint64 // seeds[layer][replica]

	segs  []bitArray // probabilistic segments
	exact bitArray   // exact bitmap (empty unless cfg.Exact)

	exactLevel uint // ℓ_k when cfg.Exact
	hasExact   bool
	permute    bool
	maxScan    uint64

	hashOverride hashFunc // nil in production; tests only
}

// New creates a filter from a validated Config.
func New(cfg Config) (*Filter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k := cfg.K()
	f := &Filter{
		cfg:      cfg,
		k:        k,
		domain:   uint(cfg.Domain),
		levels:   make([]uint, k),
		wshift:   make([]uint, k),
		segID:    make([]int, k),
		nwords:   make([]uint64, k),
		mods:     make([]modulus, k),
		replicas: make([]int, k),
		seeds:    make([][]uint64, k),
		segs:     make([]bitArray, len(cfg.SegBits)),
		permute:  cfg.PermuteWords,
		maxScan:  DefaultMaxScanGroups,
	}
	if cfg.MaxScanGroups > 0 {
		f.maxScan = uint64(cfg.MaxScanGroups)
	}
	for s, b := range cfg.SegBits {
		f.segs[s] = newBitArray(b)
	}
	lvl := uint(0)
	for i := 0; i < k; i++ {
		f.levels[i] = lvl
		lvl += uint(cfg.Deltas[i])
		f.wshift[i] = uint(cfg.Deltas[i] - 1)
		if cfg.SegmentOf != nil {
			f.segID[i] = cfg.SegmentOf[i]
		}
		f.nwords[i] = cfg.SegBits[f.segID[i]] >> f.wshift[i]
		f.mods[i] = newModulus(f.nwords[i])
		f.replicas[i] = 1
		if cfg.Replicas != nil {
			f.replicas[i] = cfg.Replicas[i]
		}
		f.seeds[i] = make([]uint64, f.replicas[i])
		for r := range f.seeds[i] {
			f.seeds[i][r] = hashutil.Mix64(uint64(i)<<32 | uint64(r) | 0xb10f<<48)
		}
	}
	if cfg.Exact {
		f.hasExact = true
		f.exactLevel = lvl
		f.exact = newBitArray(cfg.ExactBits())
	}
	return f, nil
}

// NewBasic creates the tuning-free basic bloomRF of §3–5 sized for n keys
// at the given space budget.
func NewBasic(n uint64, bitsPerKey float64) *Filter {
	f, err := New(BasicConfig(n, bitsPerKey))
	if err != nil {
		// BasicConfig always produces a valid config; reaching this is a bug.
		panic(fmt.Sprintf("core: invalid basic config: %v", err))
	}
	return f
}

// hash returns the raw hash of word-group g for (layer, replica).
func (f *Filter) hash(layer, replica int, g uint64) uint64 {
	if f.hashOverride != nil {
		return f.hashOverride(layer, replica, g)
	}
	return hashutil.Hash64(g, f.seeds[layer][replica])
}

// wordPos locates the filter word holding word-group g of a layer/replica:
// the containing segment and the bit position of the word's first bit. The
// h mod nwords reduction uses the layer's precomputed Lemire reciprocal
// (batch.go) — bit-identical to the hardware division it replaces, so
// single-key and batch paths always agree on probe positions.
func (f *Filter) wordPos(layer, replica int, g uint64) (seg *bitArray, bitPos uint64) {
	h := f.hash(layer, replica, g)
	w := f.mods[layer].mod(h)
	return &f.segs[f.segID[layer]], w << f.wshift[layer]
}

// reversedPrefix implements the §3.2 degenerate-distribution mitigation:
// when PermuteWords is on, half of the prefixes (chosen by a hash of the
// prefix itself) write their word in reverse bit order, breaking key
// patterns that would otherwise pile every layer onto the same in-word
// offset. Insert, point and covering probes know the prefix and use the
// exact orientation; decomposition runs test both orientations in the same
// single word access (see testRangeLayer).
func (f *Filter) reversedPrefix(layer int, prefix uint64) bool {
	if !f.permute {
		return false
	}
	return hashutil.Hash64(prefix, uint64(layer)|0x0e7a<<48)&1 == 1
}

// layerBit returns the exact bit position of key x on a layer/replica
// (MH_i(x) of §3.2), relative to the layer's segment.
func (f *Filter) layerBit(layer, replica int, x uint64) (seg *bitArray, pos uint64) {
	ws := f.wshift[layer]
	prefix := rsh(x, f.levels[layer])
	g := prefix >> ws
	off := prefix & lowMask(ws)
	if f.reversedPrefix(layer, prefix) {
		off = lowMask(ws) - off
	}
	seg, base := f.wordPos(layer, replica, g)
	return seg, base + off
}

// Insert adds key x to the filter. Safe for concurrent use.
func (f *Filter) Insert(x uint64) {
	for i := 0; i < f.k; i++ {
		for r := 0; r < f.replicas[i]; r++ {
			seg, pos := f.layerBit(i, r, x)
			seg.setBit(pos)
		}
	}
	if f.hasExact {
		f.exact.setBit(rsh(x, f.exactLevel))
	}
}

// MayContain reports whether x may have been inserted. False means
// definitely absent; true means present with probability 1 − FPR.
// Safe for concurrent use with Insert.
func (f *Filter) MayContain(x uint64) bool {
	if f.hasExact && !f.exact.getBit(rsh(x, f.exactLevel)) {
		return false
	}
	// Probe top-down: upper layers are sparser early in the filter's life,
	// which makes negative probes cheap (error-correction order, §3.2).
	for i := f.k - 1; i >= 0; i-- {
		for r := 0; r < f.replicas[i]; r++ {
			seg, pos := f.layerBit(i, r, x)
			if !seg.getBit(pos) {
				return false
			}
		}
	}
	return true
}

// Config returns a copy of the filter's configuration.
func (f *Filter) Config() Config {
	c := f.cfg
	c.Deltas = append([]int(nil), f.cfg.Deltas...)
	if f.cfg.Replicas != nil {
		c.Replicas = append([]int(nil), f.cfg.Replicas...)
	}
	if f.cfg.SegmentOf != nil {
		c.SegmentOf = append([]int(nil), f.cfg.SegmentOf...)
	}
	c.SegBits = append([]uint64(nil), f.cfg.SegBits...)
	return c
}

// K returns the number of probabilistic layers.
func (f *Filter) K() int { return f.k }

// SizeBits returns the total memory footprint in bits.
func (f *Filter) SizeBits() uint64 {
	var t uint64
	for i := range f.segs {
		t += f.segs[i].size()
	}
	return t + f.exact.size()
}

// FillRatio returns the fraction of set bits in probabilistic segment s.
func (f *Filter) FillRatio(s int) float64 {
	return float64(f.segs[s].onesCount()) / float64(f.segs[s].size())
}

// SegmentSnapshot returns a copy of the raw words of probabilistic segment
// s, used by the Fig. 5 scatter analysis.
func (f *Filter) SegmentSnapshot(s int) []uint64 { return f.segs[s].snapshot() }

// NumSegments returns the number of probabilistic segments.
func (f *Filter) NumSegments() int { return len(f.segs) }

// LayerWord returns the storage-word index (within the layer's segment,
// counted in 64-bit elements) that key x maps to on the given layer, for
// scatter analysis (Fig. 5.A).
func (f *Filter) LayerWord(layer int, x uint64) uint64 {
	_, pos := f.layerBit(layer, 0, x)
	return pos >> 6
}

// Levels returns ℓ_0..ℓ_k (the last entry is the exact level if present).
func (f *Filter) Levels() []int { return f.cfg.Levels() }

// HasExact reports whether the filter has an exact top bitmap.
func (f *Filter) HasExact() bool { return f.hasExact }

// popcount of a layer for diagnostics.
func (f *Filter) exactOnes() uint64 {
	if !f.hasExact {
		return 0
	}
	return f.exact.onesCount()
}

// Stats summarizes filter occupancy for diagnostics and experiments.
type Stats struct {
	SizeBits   uint64
	K          int
	SetBits    uint64
	ExactBits  uint64
	ExactSet   uint64
	FillRatios []float64
}

// Stats returns occupancy statistics.
func (f *Filter) Stats() Stats {
	st := Stats{SizeBits: f.SizeBits(), K: f.k, ExactBits: f.exact.size(), ExactSet: f.exactOnes()}
	st.FillRatios = make([]float64, len(f.segs))
	for i := range f.segs {
		ones := f.segs[i].onesCount()
		st.SetBits += ones
		st.FillRatios[i] = float64(ones) / float64(f.segs[i].size())
	}
	return st
}

// log2u returns ⌊log2 x⌋ (0 for x = 0).
func log2u(x uint64) int {
	if x == 0 {
		return 0
	}
	return bits.Len64(x) - 1
}
