package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// paperHash reproduces the worked example of the paper's Figs. 3/4:
// h_i(x) = a_i + b_i·x with a = (7,5,3,2) and b = (41,37,31,29) for layers
// 0..3 (the paper lists them top-down as a_i = 2,3,5,7 / b_i = 29,31,37,41).
func paperHash(layer, _ int, g uint64) uint64 {
	a := [4]uint64{7, 5, 3, 2}
	b := [4]uint64{41, 37, 31, 29}
	return a[layer] + b[layer]*g
}

// paperFilter builds the §3.2 example: d = 16, Δ = 4, k = 4, m = 32 bits.
func paperFilter(t *testing.T) *Filter {
	t.Helper()
	cfg := Config{
		Domain:  16,
		Deltas:  []int{4, 4, 4, 4},
		SegBits: []uint64{64}, // storage is 64-bit granular; words 0..3 of 8 bits cover m=32
	}
	// The example uses m = 32 bits = 4 words of 8 bits. Storage must be a
	// multiple of 64 bits, so we build with 64 bits and restrict the word
	// count per layer to 4 by overriding nwords below.
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	f.hashOverride = paperHash
	for i := range f.nwords {
		f.nwords[i] = 4
		f.mods[i] = newModulus(4) // keep the reduction in lockstep with nwords
	}
	return f
}

// TestPaperFig4Codes pins the PMHF codes of Fig. 4: keys 42, 1414, 50000
// map to positions (MH3, MH2, MH1, MH0) = (16,24,10,2), (16,29,0,30),
// (28,27,29,8).
func TestPaperFig4Codes(t *testing.T) {
	f := paperFilter(t)
	want := map[uint64][4]uint64{
		42:    {16, 24, 10, 2},
		1414:  {16, 29, 0, 30},
		50000: {28, 27, 29, 8},
		// Lookup keys from the §3.2 text.
		43: {16, 24, 10, 3},
		48: {16, 24, 11, 8},
	}
	for key, codes := range want {
		for layer := 0; layer < 4; layer++ {
			_, pos := f.layerBit(layer, 0, key)
			if got, want := pos, codes[3-layer]; got != want {
				t.Errorf("key %d layer %d: MH = %d, want %d", key, layer, got, want)
			}
		}
	}
}

// TestPaperFig4BitArray pins the bit-array state after inserting
// X = {42, 1414, 50000}: bits 0,2,8,10,16,24,27,28,29,30 set.
func TestPaperFig4BitArray(t *testing.T) {
	f := paperFilter(t)
	for _, x := range []uint64{42, 1414, 50000} {
		f.Insert(x)
	}
	wantSet := map[uint64]bool{0: true, 2: true, 8: true, 10: true, 16: true, 24: true, 27: true, 28: true, 29: true, 30: true}
	for pos := uint64(0); pos < 32; pos++ {
		if got := f.segs[0].getBit(pos); got != wantSet[pos] {
			t.Errorf("bit %d: got %v, want %v", pos, got, wantSet[pos])
		}
	}
}

// TestPaperFig4RangeExamples pins the §3.2 range probes: [42,43] is
// positive (single word access on layer 0) and [44,47] is negative.
func TestPaperFig4RangeExamples(t *testing.T) {
	f := paperFilter(t)
	for _, x := range []uint64{42, 1414, 50000} {
		f.Insert(x)
	}
	if !f.MayContainRange(42, 43) {
		t.Error("range [42,43] should be (true) positive")
	}
	if f.MayContainRange(44, 47) {
		t.Error("range [44,47] should be negative")
	}
	// §3.2 "Vertical PMHF and error-correction": the DI [416,431] gets a
	// layer-1 hit (bit 2 is set) that layer 2 corrects (bit 25 is clear).
	if f.MayContainRange(416, 431) {
		t.Error("range [416,431] should be negative after error-correction")
	}
}

func TestNoFalseNegativesPoint(t *testing.T) {
	f := NewBasic(1000, 10)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Insert(keys[i])
	}
	for _, k := range keys {
		if !f.MayContain(k) {
			t.Fatalf("false negative for key %d", k)
		}
	}
}

func TestPointFPRSanity(t *testing.T) {
	const n = 20000
	f := NewBasic(n, 14)
	rng := rand.New(rand.NewSource(2))
	present := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		k := rng.Uint64()
		present[k] = true
		f.Insert(k)
	}
	fp, probes := 0, 0
	for i := 0; i < 50000; i++ {
		y := rng.Uint64()
		if present[y] {
			continue
		}
		probes++
		if f.MayContain(y) {
			fp++
		}
	}
	fpr := float64(fp) / float64(probes)
	if fpr > 0.05 {
		t.Fatalf("point FPR %.4f too high for 14 bits/key", fpr)
	}
}

func TestBasicConfigK(t *testing.T) {
	// Paper §3.2 "Random Scatter": 2M keys, d = 64, Δ = 7 ⇒ k = 6.
	cfg := BasicConfig(2_000_000, 10)
	if got := cfg.K(); got != 6 {
		t.Errorf("k = %d for 2M keys, want 6 (paper §3.2 Random Scatter)", got)
	}
	cfg50 := BasicConfig(50_000_000, 14)
	if got := cfg50.K(); got != 6 {
		t.Errorf("k = %d for 50M keys, want 6", got)
	}
	// n = 3, d = 16, Δ = 4 ⇒ k = 4 (paper §3.1 introductory example).
	cfg2 := basicConfigDomain(16, 3, 10)
	cfg2.Deltas = []int{4, 4, 4, 4}
	if err := cfg2.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Domain: 0, Deltas: []int{7}, SegBits: []uint64{64}},
		{Domain: 64, Deltas: nil, SegBits: []uint64{64}},
		{Domain: 64, Deltas: []int{8}, SegBits: []uint64{64}},
		{Domain: 64, Deltas: []int{0}, SegBits: []uint64{64}},
		{Domain: 16, Deltas: []int{7, 7, 7}, SegBits: []uint64{64}},                                             // ΣΔ > d
		{Domain: 64, Deltas: []int{7}, SegBits: []uint64{63}},                                                   // not mult of 64
		{Domain: 64, Deltas: []int{7}, SegBits: []uint64{64}, Replicas: []int{0}},                               // r < 1
		{Domain: 64, Deltas: []int{7}, SegBits: []uint64{64, 64}},                                               // missing SegmentOf
		{Domain: 64, Deltas: []int{7}, SegBits: []uint64{64, 64}, SegmentOf: []int{2}},                          // seg out of range
		{Domain: 64, Deltas: []int{7, 7}, SegBits: []uint64{64}, SegmentOf: []int{0}},                           // len mismatch
		{Domain: 64, Deltas: []int{7, 7}, SegBits: []uint64{64}, Replicas: []int{1}},                            // len mismatch
		{Domain: 64, Deltas: []int{1}, SegBits: []uint64{64}, Exact: true},                                      // exact bitmap 2^63
		{Domain: 64, Deltas: []int{7}, SegBits: []uint64{0}},                                                    // zero segment
		{Domain: 65, Deltas: []int{7}, SegBits: []uint64{64}},                                                   // domain too big
		{Domain: 64, Deltas: []int{7, 7}, SegBits: []uint64{64, 64}, SegmentOf: []int{0, -1}},                   // negative seg
		{Domain: 64, Deltas: []int{7, 7}, SegBits: []uint64{64}, SegmentOf: []int{0, 0}, Replicas: []int{1, 0}}, // r<1
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d: expected validation error", i)
		}
	}
	good := Config{Domain: 64, Deltas: []int{7, 7, 4, 2}, SegBits: []uint64{4096, 1024},
		SegmentOf: []int{0, 0, 1, 1}, Replicas: []int{1, 1, 1, 2}}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	if got, want := good.TotalBits(), uint64(5120); got != want {
		t.Errorf("TotalBits = %d, want %d", got, want)
	}
}

func TestLevels(t *testing.T) {
	cfg := Config{Domain: 64, Deltas: []int{7, 7, 7, 7, 4, 2, 2}, SegBits: []uint64{64}}
	want := []int{0, 7, 14, 21, 28, 32, 34, 36}
	got := cfg.Levels()
	if len(got) != len(want) {
		t.Fatalf("levels = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("levels = %v, want %v", got, want)
		}
	}
}

// TestPointEqualsDegenerateRange: MayContainRange(x,x) must agree with
// MayContain(x) — both test the same code bits.
func TestPointEqualsDegenerateRange(t *testing.T) {
	f := NewBasic(500, 12)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		f.Insert(rng.Uint64())
	}
	cfg := &quick.Config{MaxCount: 2000}
	prop := func(x uint64) bool {
		return f.MayContain(x) == f.MayContainRange(x, x)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRangeContainingKeyMonotone: any range around a stored key stays
// positive no matter how it is widened — the true-positive side of
// monotonicity. (Widening an *empty* range may legitimately flip a false
// positive back to negative because the dyadic decomposition changes.)
func TestRangeContainingKeyMonotone(t *testing.T) {
	f := NewBasic(500, 12)
	rng := rand.New(rand.NewSource(4))
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = rng.Uint64() >> 20
		f.Insert(keys[i])
	}
	cfg := &quick.Config{MaxCount: 4000}
	prop := func(i uint16, wl, wr uint32) bool {
		k := keys[int(i)%len(keys)]
		lo := k - min(k, uint64(wl))
		hi := k + min(^uint64(0)-k, uint64(wr))
		return f.MayContainRange(lo, hi)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPermuteWordsStillNoFalseNegatives(t *testing.T) {
	cfg := BasicConfig(2000, 12)
	cfg.PermuteWords = true
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	keys := make([]uint64, 2000)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Insert(keys[i])
	}
	for _, k := range keys {
		if !f.MayContain(k) {
			t.Fatalf("false negative with PermuteWords for %d", k)
		}
		if !f.MayContainRange(k, k+100) {
			t.Fatalf("range false negative with PermuteWords for %d", k)
		}
	}
}

// TestPermuteWordsBreaksDegenerateDistribution exercises the §3.2
// degenerate-distribution scenario: keys whose offset bits are identical on
// every layer pile onto one in-word offset without permutation.
func TestPermuteWordsBreaksDegenerateDistribution(t *testing.T) {
	degenKeys := func(rng *rand.Rand, n int) []uint64 {
		// Craft keys where bits iΔ..(i+1)Δ−2 hold the same value λ = 5 for
		// every layer (Δ = 7), so every PMHF would use offset 5.
		keys := make([]uint64, n)
		for i := range keys {
			var x uint64
			for layer := 0; layer < 9; layer++ {
				x |= 5 << (layer * 7)
				// Randomize the inter-word bit (position (i+1)Δ−1).
				if rng.Intn(2) == 1 && layer < 9 {
					x |= 1 << (layer*7 + 6)
				}
			}
			keys[i] = x
		}
		return keys
	}
	measureOffsets := func(permute bool) int {
		cfg := BasicConfig(4096, 10)
		cfg.PermuteWords = permute
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(6))
		offsets := make(map[uint64]bool)
		for _, k := range degenKeys(rng, 512) {
			f.Insert(k)
			for layer := 0; layer < f.k; layer++ {
				_, pos := f.layerBit(layer, 0, k)
				offsets[pos&63] = true
			}
		}
		return len(offsets)
	}
	plain := measureOffsets(false)
	permuted := measureOffsets(true)
	if plain != 1 {
		t.Fatalf("degenerate keys should collapse to 1 offset without permutation, got %d", plain)
	}
	if permuted < 2 {
		t.Fatalf("permutation should spread offsets, got %d distinct", permuted)
	}
}

func TestStats(t *testing.T) {
	f := NewBasic(100, 10)
	for i := uint64(0); i < 100; i++ {
		f.Insert(i * 977)
	}
	st := f.Stats()
	if st.SetBits == 0 {
		t.Error("no bits set after inserts")
	}
	if st.K != f.K() {
		t.Errorf("Stats.K = %d, want %d", st.K, f.K())
	}
	if st.FillRatios[0] <= 0 || st.FillRatios[0] >= 1 {
		t.Errorf("fill ratio %f out of (0,1)", st.FillRatios[0])
	}
	if f.FillRatio(0) != st.FillRatios[0] {
		t.Error("FillRatio disagrees with Stats")
	}
}

func TestDomainClamp(t *testing.T) {
	cfg := basicConfigDomain(16, 100, 12)
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		f.Insert(i * 131)
	}
	// Queries beyond the 16-bit domain must not panic; a lo beyond the
	// domain is definitely empty.
	if f.MayContainRange(1<<20, 1<<21) {
		t.Error("range entirely above domain should be empty")
	}
	if !f.MayContainRange(0, ^uint64(0)) {
		t.Error("full-domain range over a non-empty filter must be positive")
	}
}

func TestLayerWordDeterministic(t *testing.T) {
	f := NewBasic(1000, 10)
	for x := uint64(0); x < 100; x++ {
		if f.LayerWord(0, x) != f.LayerWord(0, x) {
			t.Fatal("LayerWord not deterministic")
		}
	}
}
