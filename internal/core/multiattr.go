package core

import "fmt"

// MultiAttr is the two-dimensional bloomRF of §8: it concatenates two
// attributes at reduced precision (32 bits each) and inserts the pair in
// both orders — <A,B> and <B,A> — into one underlying filter. This answers
// conjunctive predicates with one attribute fixed and the other a point or
// range, e.g. A<42 AND B=4711, A=42 AND B>4711, or A=42 AND B=4711.
//
// Precision reduction is monotone (a right shift), so range predicates stay
// free of false negatives: query bounds are widened to the containing
// reduced-precision bucket.
type MultiAttr struct {
	f *Filter
	// shiftA/shiftB reduce each attribute into 32 bits.
	shiftA, shiftB uint
}

// MultiAttrOptions configures a two-attribute filter.
type MultiAttrOptions struct {
	// N is the expected number of tuples (each inserted twice).
	N uint64
	// BitsPerKey is the budget per tuple.
	BitsPerKey float64
	// MaxRange bounds range predicates in reduced-precision units; 0 means
	// 2^20.
	MaxRange float64
	// BitsA and BitsB give the significant bits of each attribute (≤ 64);
	// values above 32 are right-shifted into 32 bits. 0 means 32.
	BitsA, BitsB int
}

// NewMultiAttr creates a two-attribute bloomRF.
func NewMultiAttr(opt MultiAttrOptions) (*MultiAttr, error) {
	if opt.N == 0 || opt.BitsPerKey <= 0 {
		return nil, fmt.Errorf("core: MultiAttr needs N and BitsPerKey")
	}
	r := opt.MaxRange
	if r == 0 {
		r = 1 << 20
	}
	shift := func(bits int) uint {
		if bits <= 0 || bits > 64 {
			bits = 32
		}
		if bits <= 32 {
			return 0
		}
		return uint(bits - 32)
	}
	// Both orders are inserted, doubling the key count at the same total
	// budget — the space cost the paper accepts for dual-direction queries.
	f, _, err := NewTuned(TuneOptions{N: 2 * opt.N, BitsPerKey: opt.BitsPerKey / 2, MaxRange: r})
	if err != nil {
		return nil, err
	}
	return &MultiAttr{f: f, shiftA: shift(opt.BitsA), shiftB: shift(opt.BitsB)}, nil
}

// reduce clamps a reduced value into 32 bits.
func reduce(v uint64, shift uint) uint64 {
	v >>= shift
	if v > 0xFFFFFFFF {
		v = 0xFFFFFFFF
	}
	return v
}

// Insert adds the tuple (a, b).
func (m *MultiAttr) Insert(a, b uint64) {
	ra, rb := reduce(a, m.shiftA), reduce(b, m.shiftB)
	m.f.Insert(ra<<32 | rb) // <A,B>
	m.f.Insert(rb<<32 | ra) // <B,A>
}

// MayContainPoint tests A = a AND B = b.
func (m *MultiAttr) MayContainPoint(a, b uint64) bool {
	ra, rb := reduce(a, m.shiftA), reduce(b, m.shiftB)
	return m.f.MayContain(ra<<32 | rb)
}

// MayContainARangeBEq tests A ∈ [aLo, aHi] AND B = b using the <B,A>
// orientation, whose high bits pin B exactly.
func (m *MultiAttr) MayContainARangeBEq(aLo, aHi, b uint64) bool {
	rb := reduce(b, m.shiftB)
	lo := reduce(aLo, m.shiftA)
	hi := reduce(aHi, m.shiftA)
	return m.f.MayContainRange(rb<<32|lo, rb<<32|hi)
}

// MayContainAEqBRange tests A = a AND B ∈ [bLo, bHi] using the <A,B>
// orientation.
func (m *MultiAttr) MayContainAEqBRange(a, bLo, bHi uint64) bool {
	ra := reduce(a, m.shiftA)
	lo := reduce(bLo, m.shiftB)
	hi := reduce(bHi, m.shiftB)
	return m.f.MayContainRange(ra<<32|lo, ra<<32|hi)
}

// SizeBits returns the underlying filter's footprint.
func (m *MultiAttr) SizeBits() uint64 { return m.f.SizeBits() }
