package core

import (
	"math"

	"repro/internal/hashutil"
)

// EncodeFloat64 maps a float64 to a uint64 with the order-preserving coding
// φ of §8: φ(x) = x + 2^(q+r) when the sign bit is clear, and the bitwise
// inverse otherwise, so φ(x) < φ(y) ⇔ x < y for all ordered (non-NaN)
// floats. Insert and query through this coding: a float range query [x, y]
// becomes the integer range query [φ(x), φ(y)].
//
// NaN has no place in a total order; it encodes above +Inf and should be
// filtered out by callers that care. −0 encodes just below +0.
func EncodeFloat64(f float64) uint64 {
	b := math.Float64bits(f)
	if b>>63 == 0 {
		return b + (1 << 63)
	}
	return ^b
}

// DecodeFloat64 inverts EncodeFloat64.
func DecodeFloat64(u uint64) float64 {
	if u>>63 == 1 {
		return math.Float64frombits(u - (1 << 63))
	}
	return math.Float64frombits(^u)
}

// EncodeFloat32 is the 32-bit analogue of EncodeFloat64, placed in the high
// half of the uint64 so dyadic prefixes stay meaningful.
func EncodeFloat32(f float32) uint64 {
	b := uint64(math.Float32bits(f))
	if b>>31 == 0 {
		b += 1 << 31
	} else {
		b = ^b & 0xFFFFFFFF
	}
	return b << 32
}

// stringPrefixBytes is the number of leading string bytes preserved
// order-exactly in the encoding (§8: "the first seven characters in the
// seven most-significant bytes").
const stringPrefixBytes = 7

// EncodeStringPoint maps a string to the uint64 bloomRF representation for
// insertion and point queries: the first seven bytes big-endian in the top
// seven bytes, plus a one-byte hash of the remainder (including the length)
// in the least significant byte, mirroring SuRF-Hash (§8).
func EncodeStringPoint(s string) uint64 {
	v := encodeStringPrefix(s)
	rest := ""
	if len(s) > stringPrefixBytes {
		rest = s[stringPrefixBytes:]
	}
	h := hashutil.HashString(rest, uint64(len(s)))
	return v | (h & 0xFF)
}

// EncodeStringRange maps the bounds of a string range query to a uint64
// interval. The hash byte carries no order, so the low byte is saturated
// outward: [lo·00, hi·FF]. Range answers therefore have prefix granularity
// (strings sharing the first seven bytes collide), matching the paper's
// SuRF-Hash-style string support.
func EncodeStringRange(lo, hi string) (uint64, uint64) {
	return encodeStringPrefix(lo), encodeStringPrefix(hi) | 0xFF
}

func encodeStringPrefix(s string) uint64 {
	var v uint64
	for i := 0; i < stringPrefixBytes; i++ {
		v <<= 8
		if i < len(s) {
			v |= uint64(s[i])
		}
	}
	return v << 8
}

// EncodeInt64 maps a signed integer to a uint64 preserving order (flip the
// sign bit), so signed domains can use bloomRF range queries directly.
func EncodeInt64(x int64) uint64 {
	return uint64(x) ^ (1 << 63)
}

// DecodeInt64 inverts EncodeInt64.
func DecodeInt64(u uint64) int64 {
	return int64(u ^ (1 << 63))
}
