package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFloatCodingMonotone: φ(x) < φ(y) ⇔ x < y for ordered floats (§8).
func TestFloatCodingMonotone(t *testing.T) {
	prop := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ea, eb := EncodeFloat64(a), EncodeFloat64(b)
		switch {
		case a < b:
			return ea < eb
		case a > b:
			return ea > eb
		default:
			// −0 and +0 compare equal but encode adjacently.
			return ea == eb || math.Signbit(a) != math.Signbit(b)
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloatCodingRoundTrip(t *testing.T) {
	prop := func(a float64) bool {
		if math.IsNaN(a) {
			return true
		}
		return DecodeFloat64(EncodeFloat64(a)) == a
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
	// Edge values.
	for _, v := range []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1),
		math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64} {
		if DecodeFloat64(EncodeFloat64(v)) != v {
			t.Errorf("round trip failed for %v", v)
		}
	}
}

func TestFloatCodingOrderEdges(t *testing.T) {
	ordered := []float64{math.Inf(-1), -math.MaxFloat64, -1.5, -math.SmallestNonzeroFloat64,
		math.Copysign(0, -1), 0, math.SmallestNonzeroFloat64, 1.5, math.MaxFloat64, math.Inf(1)}
	for i := 1; i < len(ordered); i++ {
		if EncodeFloat64(ordered[i-1]) >= EncodeFloat64(ordered[i]) &&
			!(ordered[i-1] == 0 && ordered[i] == 0) {
			t.Errorf("coding order broken between %v and %v", ordered[i-1], ordered[i])
		}
	}
	// The paper's observation: a float range of width 1 can span ~2^61
	// integer codes — the motivation for range support independent of R.
	span := EncodeFloat64(1) - EncodeFloat64(0)
	if span < 1<<60 {
		t.Errorf("code span of [0,1] = %d, expected huge (≥2^60)", span)
	}
}

func TestFloat32Coding(t *testing.T) {
	prop := func(a, b float32) bool {
		if a != a || b != b { // NaN
			return true
		}
		if a < b {
			return EncodeFloat32(a) < EncodeFloat32(b)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

// TestFilterWithFloats: insert floats, range-query through the coding with
// no false negatives (the Fig. 12.D code path).
func TestFilterWithFloats(t *testing.T) {
	f := NewBasic(5000, 16)
	rng := rand.New(rand.NewSource(30))
	vals := make([]float64, 5000)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 100
		f.Insert(EncodeFloat64(vals[i]))
	}
	for _, v := range vals {
		lo, hi := v-0.001, v+0.001
		if !f.MayContainRange(EncodeFloat64(lo), EncodeFloat64(hi)) {
			t.Fatalf("false negative for float range around %v", v)
		}
	}
}

func TestStringEncoding(t *testing.T) {
	// Order preserved on the 7-byte prefix for range encodings.
	lo, hi := EncodeStringRange("apple", "banana")
	if lo >= hi {
		t.Error("apple..banana range inverted")
	}
	lo2, _ := EncodeStringRange("applf", "x")
	if lo2 <= lo {
		t.Error("prefix order broken")
	}
	// Point encodings differentiate strings sharing the 7-byte prefix via
	// the hash byte (with high probability).
	a := EncodeStringPoint("prefix-aaaaaaaa")
	b := EncodeStringPoint("prefix-bbbbbbbb")
	if a>>8 != b>>8 {
		t.Error("7-byte prefixes should match")
	}
	if a == b {
		t.Error("hash byte failed to differentiate suffixes")
	}
	// Length is part of the hash: "abc" vs "abc\x00" style collisions.
	if EncodeStringPoint("prefix-") == EncodeStringPoint("prefix-\x00") {
		t.Error("length not hashed")
	}
}

func TestStringFilterNoFalseNegatives(t *testing.T) {
	f := NewBasic(1000, 16)
	words := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot",
		"golf", "hotel", "india", "juliet", "kilo", "lima", "longsharedprefix-1",
		"longsharedprefix-2", "z"}
	for _, w := range words {
		f.Insert(EncodeStringPoint(w))
	}
	for _, w := range words {
		if !f.MayContain(EncodeStringPoint(w)) {
			t.Errorf("point false negative for %q", w)
		}
		lo, hi := EncodeStringRange(w, w)
		if !f.MayContainRange(lo, hi) {
			t.Errorf("range false negative for %q", w)
		}
	}
	// A range that brackets a stored word must hit.
	lo, hi := EncodeStringRange("a", "b")
	if !f.MayContainRange(lo, hi) {
		t.Error("range [a,b] should cover alpha")
	}
}

func TestInt64Coding(t *testing.T) {
	prop := func(a, b int64) bool {
		if a < b {
			return EncodeInt64(a) < EncodeInt64(b)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{math.MinInt64, -1, 0, 1, math.MaxInt64} {
		if DecodeInt64(EncodeInt64(v)) != v {
			t.Errorf("int64 round trip failed for %d", v)
		}
	}
}
