package core

import (
	"math/rand"
	"testing"
)

func TestMultiAttrPointAndRange(t *testing.T) {
	m, err := NewMultiAttr(MultiAttrOptions{N: 2000, BitsPerKey: 20})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(40))
	type tup struct{ a, b uint64 }
	tups := make([]tup, 2000)
	for i := range tups {
		tups[i] = tup{uint64(rng.Intn(1 << 20)), uint64(rng.Intn(1 << 20))}
		m.Insert(tups[i].a, tups[i].b)
	}
	for _, tp := range tups {
		if !m.MayContainPoint(tp.a, tp.b) {
			t.Fatalf("point false negative for (%d,%d)", tp.a, tp.b)
		}
		// A < a+10 AND B = b (the paper's Run<300 AND ObjectID=Const shape).
		if !m.MayContainARangeBEq(tp.a-min(tp.a, 5), tp.a+5, tp.b) {
			t.Fatalf("A-range false negative for (%d,%d)", tp.a, tp.b)
		}
		// A = a AND B in range.
		if !m.MayContainAEqBRange(tp.a, tp.b-min(tp.b, 5), tp.b+5) {
			t.Fatalf("B-range false negative for (%d,%d)", tp.a, tp.b)
		}
	}
}

func TestMultiAttrSelectivity(t *testing.T) {
	// The conjunctive filter must reject most non-matching combinations:
	// pairing As and Bs that never co-occur.
	m, err := NewMultiAttr(MultiAttrOptions{N: 5000, BitsPerKey: 24})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5000; i++ {
		m.Insert(i, i+1_000_000) // strictly correlated pairs
	}
	fp := 0
	const probes = 2000
	for i := uint64(0); i < probes; i++ {
		// a exists, b exists, but never together.
		if m.MayContainPoint(i%5000, (i+2500)%5000+1_000_000) {
			fp++
		}
	}
	if fpr := float64(fp) / probes; fpr > 0.2 {
		t.Errorf("multi-attr point FPR %.3f too high", fpr)
	}
}

func TestMultiAttrPrecisionReduction(t *testing.T) {
	// 40-bit attributes are right-shifted into 32 bits; range queries stay
	// free of false negatives because the reduction is monotone.
	m, err := NewMultiAttr(MultiAttrOptions{N: 500, BitsPerKey: 20, BitsA: 40, BitsB: 40})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	type tup struct{ a, b uint64 }
	tups := make([]tup, 500)
	for i := range tups {
		tups[i] = tup{rng.Uint64() >> 24, rng.Uint64() >> 24}
		m.Insert(tups[i].a, tups[i].b)
	}
	for _, tp := range tups {
		if !m.MayContainPoint(tp.a, tp.b) {
			t.Fatalf("false negative after precision reduction (%d,%d)", tp.a, tp.b)
		}
		if !m.MayContainARangeBEq(tp.a, tp.a+1000, tp.b) {
			t.Fatalf("range false negative after precision reduction")
		}
	}
}

func TestMultiAttrRejectsBadOptions(t *testing.T) {
	if _, err := NewMultiAttr(MultiAttrOptions{N: 0, BitsPerKey: 10}); err == nil {
		t.Error("N=0 should error")
	}
	if _, err := NewMultiAttr(MultiAttrOptions{N: 10, BitsPerKey: 0}); err == nil {
		t.Error("BitsPerKey=0 should error")
	}
}
