package core

import "math/bits"

// Covering kinds used by the two-path range lookup. A covering is a dyadic
// interval that contains a query bound; it is tested with a single bit and,
// if positive, expanded into the layer below (paper §4).
const (
	covSingle = iota // contains both bounds (phase 1 of Fig. 7)
	covLeft          // contains the left bound; query extends to the DI's right edge
	covRight         // contains the right bound; query extends from the DI's left edge
)

// MayContainRange reports whether any key in [lo, hi] (inclusive) may have
// been inserted. False means the range is definitely empty; true means it
// is non-empty with probability 1 − FPR. Both orders of the bounds are
// accepted. Safe for concurrent use with Insert.
//
// The implementation follows Algorithm 1: it walks the left and right
// prefix paths top-down, testing one covering bit per path per layer and
// the contiguous runs of decomposition intervals with at most two masked
// word accesses per path per layer, giving O(k) time independent of the
// range size.
func (f *Filter) MayContainRange(lo, hi uint64) bool {
	if lo > hi {
		lo, hi = hi, lo
	}
	if f.domain < 64 {
		max := lowMask(f.domain)
		if lo > max {
			return false
		}
		if hi > max {
			hi = max
		}
	}

	top := f.k - 1
	if f.hasExact {
		top = f.k // virtual exact layer above the probabilistic ones
	}
	var covs [2]int
	ncov := 0

	// Initial split at the top level. Levels above it are saturated (or
	// exact) by construction and need no probabilistic test.
	L := f.levelAt(top)
	pl, pr := rsh(lo, L), rsh(hi, L)
	switch {
	case pl == pr && alignedLeft(lo, L) && alignedRight(hi, L):
		// The query is exactly one dyadic interval: a single test decides.
		return f.testRangeLayer(top, pl, pl)
	case pl == pr:
		if !f.testCovering(top, pl) {
			return false
		}
		covs[0] = covSingle
		ncov = 1
	default:
		la, lb := pl, pr
		if !alignedLeft(lo, L) {
			la = pl + 1
			if f.testCovering(top, pl) {
				covs[ncov] = covLeft
				ncov++
			}
		}
		if !alignedRight(hi, L) {
			lb = pr - 1
			if f.testCovering(top, pr) {
				covs[ncov] = covRight
				ncov++
			}
		}
		if la <= lb && f.testRangeLayer(top, la, lb) {
			return true
		}
		if ncov == 0 {
			return false
		}
	}

	// Expand surviving coverings layer by layer. Each expansion tests the
	// fully-contained child intervals (decomposition) immediately and keeps
	// at most one boundary child per path as the next covering.
	for i := top; i >= 1; i-- {
		childLevel := f.levels[i-1]
		parentLevel := f.levelAt(i)
		delta := parentLevel - childLevel
		var next [2]int
		n2 := 0
		for j := 0; j < ncov; j++ {
			switch covs[j] {
			case covSingle:
				cpl, cpr := rsh(lo, childLevel), rsh(hi, childLevel)
				if cpl == cpr {
					if alignedLeft(lo, childLevel) && alignedRight(hi, childLevel) {
						return f.testRangeLayer(i-1, cpl, cpl)
					}
					// A single covering is the only active path, so a
					// cleared bit is an early negative (Algorithm 1, L.8).
					if !f.testCovering(i-1, cpl) {
						return false
					}
					next[n2] = covSingle
					n2++
					continue
				}
				la, lb := cpl, cpr
				if !alignedLeft(lo, childLevel) {
					la = cpl + 1
					if f.testCovering(i-1, cpl) {
						next[n2] = covLeft
						n2++
					}
				}
				if !alignedRight(hi, childLevel) {
					lb = cpr - 1
					if f.testCovering(i-1, cpr) {
						next[n2] = covRight
						n2++
					}
				}
				if la <= lb && f.testRangeLayer(i-1, la, lb) {
					return true
				}
			case covLeft:
				cpl := rsh(lo, childLevel)
				parentEnd := rsh(lo, parentLevel)<<delta | (uint64(1)<<delta - 1)
				la := cpl
				if !alignedLeft(lo, childLevel) {
					la = cpl + 1
					if f.testCovering(i-1, cpl) {
						next[n2] = covLeft
						n2++
					}
				}
				if la <= parentEnd && f.testRangeLayer(i-1, la, parentEnd) {
					return true
				}
			case covRight:
				cpr := rsh(hi, childLevel)
				parentStart := rsh(hi, parentLevel) << delta
				lb := cpr
				if !alignedRight(hi, childLevel) {
					lb = cpr - 1
					if f.testCovering(i-1, cpr) {
						next[n2] = covRight
						n2++
					}
				}
				if parentStart <= lb && f.testRangeLayer(i-1, parentStart, lb) {
					return true
				}
			}
		}
		if n2 == 0 {
			return false
		}
		covs, ncov = next, n2
	}
	// At level 0 every boundary child is itself inside the query interval,
	// so no covering survives the last expansion; reaching here means every
	// decomposition test was negative.
	return false
}

// levelAt returns the dyadic level of layer i, where i = k denotes the
// virtual exact layer.
func (f *Filter) levelAt(i int) uint {
	if i == f.k {
		return f.exactLevel
	}
	return f.levels[i]
}

// testCovering tests the single bit of the dyadic interval identified by
// prefix on layer i (i = k: exact bitmap). With replicated hash functions
// the bit must be set in every replica.
func (f *Filter) testCovering(i int, prefix uint64) bool {
	if i == f.k {
		return f.exact.getBit(prefix)
	}
	ws := f.wshift[i]
	g := prefix >> ws
	off := prefix & lowMask(ws)
	if f.reversedPrefix(i, prefix) {
		off = lowMask(ws) - off
	}
	for r := 0; r < f.replicas[i]; r++ {
		seg, base := f.wordPos(i, r, g)
		if !seg.getBit(base + off) {
			return false
		}
	}
	return true
}

// testRangeLayer tests whether any dyadic interval with prefix in [pa, pb]
// (at layer i's level) has its bit set. On the exact layer the answer is
// authoritative. On probabilistic layers the run is scanned word-group by
// word-group; each group costs one masked word access per replica, and runs
// beyond maxScan groups conservatively return true (never a false
// negative).
func (f *Filter) testRangeLayer(i int, pa, pb uint64) bool {
	if i == f.k {
		return f.exact.anySet(pa, pb)
	}
	ws := f.wshift[i]
	wbits := uint64(1) << ws
	ga, gb := pa>>ws, pb>>ws
	if gb-ga >= f.maxScan {
		return true
	}
	for g := ga; g <= gb; g++ {
		oLo := uint64(0)
		if g == ga {
			oLo = pa & (wbits - 1)
		}
		oHi := wbits - 1
		if g == gb {
			oHi = pb & (wbits - 1)
		}
		mask := lowMask(uint(oHi-oLo+1)) << oLo
		if f.permute {
			// Prefixes in the run may be stored in either orientation:
			// test both in the same word access (superset probe — the
			// small FPR cost of the degenerate-distribution defense).
			mask |= reverseWord(mask, uint(wbits))
		}
		w := ^uint64(0)
		for r := 0; r < f.replicas[i]; r++ {
			seg, base := f.wordPos(i, r, g)
			w &= seg.loadSub(base, uint(wbits))
		}
		if w&mask != 0 {
			return true
		}
	}
	return false
}

// reverseWord reverses the low wbits bits of w.
func reverseWord(w uint64, wbits uint) uint64 {
	return bits.Reverse64(w) >> (64 - wbits)
}

func alignedLeft(lo uint64, level uint) bool {
	return lo&lowMask(level) == 0
}

func alignedRight(hi uint64, level uint) bool {
	m := lowMask(level)
	return hi&m == m
}
