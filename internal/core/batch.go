package core

import (
	"math/bits"

	"repro/internal/hashutil"
)

// Batch variants of the filter's hot paths. They return exactly the same
// answers as the corresponding single-key calls — same hash positions, same
// probe order semantics. InsertBatch and MayContainBatch run layer-major
// instead of key-major: per-layer constants (level, word shift, segment,
// seed, modulus) are loaded once per layer instead of once per key, probes
// against one layer's words stay adjacent in time, and the h mod words
// reduction uses a precomputed 128-bit reciprocal (Lemire's fastmod)
// instead of a hardware division. MayContainRangeBatch is a plain loop —
// range decomposition is already O(k) per query and offers no cross-key
// work to amortize. None of the batch calls allocate.

// modulus precomputes the 128-bit reciprocal for fast exact reduction
// h mod d ("Faster Remainder by Direct Computation", Lemire et al.):
// M = ⌊(2¹²⁸−1)/d⌋ + 1, then h mod d = ⌊((M·h) mod 2¹²⁸) · d / 2¹²⁸⌋.
// The two 64×64→128 multiplies replace a ~30-cycle hardware division on the
// per-probe path.
type modulus struct {
	hi, lo uint64 // M, big-endian halves
	d      uint64
}

func newModulus(d uint64) modulus {
	if d <= 1 {
		return modulus{d: d}
	}
	qHi, r := bits.Div64(0, ^uint64(0), d)
	qLo, _ := bits.Div64(r, ^uint64(0), d)
	lo, carry := bits.Add64(qLo, 1, 0)
	return modulus{hi: qHi + carry, lo: lo, d: d}
}

// mod returns h % m.d.
func (m modulus) mod(h uint64) uint64 {
	if m.d <= 1 {
		return 0
	}
	// lowbits = (M · h) mod 2¹²⁸
	h1, l1 := bits.Mul64(m.lo, h)
	lowHi := m.hi*h + h1
	// result = ⌊(lowHi:l1) · d / 2¹²⁸⌋
	t1, _ := bits.Mul64(l1, m.d)
	t2hi, t2lo := bits.Mul64(lowHi, m.d)
	_, carry := bits.Add64(t1, t2lo, 0)
	return t2hi + carry
}

// batchBlock is the number of keys processed per layer-major block: the
// block's keys (4 KiB) plus the survivor index, probe-position and loaded-
// word buffers (another ~10 KiB) stay resident in L1 across all layer
// passes, so the only cache-unfriendly accesses are the filter probes
// themselves — the same set of probes the single-key path makes, but
// issued as runs of independent loads (see loadWord) that span whole
// cache-line groups instead of one dependent word at a time.
const batchBlock = 512

// InsertBatch adds every key in keys. It is equivalent to calling Insert on
// each key but runs layer-major over L1-sized blocks, amortizing per-layer
// setup and replacing the hash-to-word division with the precomputed
// reciprocal. Each (layer, replica) pass is itself split into two phases —
// compute every key's bit position into an L1-resident buffer, then issue
// the atomic ORs back to back — so the stores to scattered filter words
// overlap in the memory system instead of each waiting behind the next
// key's hash chain. Safe for concurrent use, like Insert.
func (f *Filter) InsertBatch(keys []uint64) {
	if len(keys) == 0 {
		return
	}
	if f.hashOverride != nil {
		for _, x := range keys {
			f.Insert(x)
		}
		return
	}
	var pos [batchBlock]uint64 // per-pass bit positions, computed ahead
	for base := 0; base < len(keys); base += batchBlock {
		blk := keys[base:min(base+batchBlock, len(keys))]
		for i := 0; i < f.k; i++ {
			lvl := f.levels[i]
			ws := f.wshift[i]
			mask := lowMask(ws)
			seg := &f.segs[f.segID[i]]
			m := f.mods[i]
			permSeed := uint64(i) | 0x0e7a<<48
			for r := 0; r < f.replicas[i]; r++ {
				seed := f.seeds[i][r]
				if f.permute {
					for t, x := range blk {
						prefix := x >> lvl
						off := prefix & mask
						if hashutil.Hash64(prefix, permSeed)&1 == 1 {
							off = mask - off
						}
						pos[t] = m.mod(hashutil.Hash64(prefix>>ws, seed))<<ws + off
					}
				} else {
					for t, x := range blk {
						prefix := x >> lvl
						pos[t] = m.mod(hashutil.Hash64(prefix>>ws, seed))<<ws + prefix&mask
					}
				}
				for _, p := range pos[:len(blk)] {
					seg.setBit(p)
				}
			}
		}
		if f.hasExact {
			el := f.exactLevel
			for t, x := range blk {
				pos[t] = rsh(x, el)
			}
			for _, p := range pos[:len(blk)] {
				f.exact.setBit(p)
			}
		}
	}
}

// MayContainBatch tests every key in keys and stores the verdicts in out,
// which must have the same length as keys (it panics otherwise). out[j] is
// exactly MayContain(keys[j]): false is definitive, true holds with
// probability 1 − FPR.
//
// The batch runs layer-major over L1-sized blocks, top-down: the exact
// bitmap and sparse upper layers reject most absent keys in the first pass,
// and each subsequent layer iterates a compacted survivor list instead of
// re-scanning the block, so rejected keys cost nothing after rejection —
// the early-exit economics of the single-key path, without its per-key
// call, per-layer setup and hardware-division overheads. Zero allocations;
// safe for concurrent use with Insert.
func (f *Filter) MayContainBatch(keys []uint64, out []bool) {
	if len(out) != len(keys) {
		panic("core: MayContainBatch len(out) != len(keys)")
	}
	if len(keys) == 0 {
		return
	}
	if f.hashOverride != nil {
		for j, x := range keys {
			out[j] = f.MayContain(x)
		}
		return
	}
	var idx [batchBlock]int32    // survivor positions within the block
	var pos [batchBlock]uint64   // per-pass probe positions, computed ahead
	var words [batchBlock]uint64 // bulk-loaded storage words, one per probe
	for base := 0; base < len(keys); base += batchBlock {
		blk := keys[base:min(base+batchBlock, len(keys))]
		bout := out[base : base+len(blk)]
		n := 0
		if f.hasExact {
			// The exact bitmap is the largest structure the batch touches,
			// so its probes get the same three-phase treatment as the layer
			// probes below: positions first (pure ALU), then the word loads
			// back to back (independent misses overlap), then the bit tests
			// against L1-resident copies.
			el := f.exactLevel
			for j, x := range blk {
				pos[j] = rsh(x, el)
			}
			for j := range blk {
				words[j] = f.exact.loadWord(pos[j])
			}
			for j := range blk {
				ok := words[j]&(1<<(pos[j]&63)) != 0
				bout[j] = ok
				// Branchless append: the store is unconditional, the
				// cursor advances only for survivors, so the ~random
				// hit/miss outcome never mispredicts.
				idx[n] = int32(j)
				inc := 0
				if ok {
					inc = 1
				}
				n += inc
			}
		} else {
			for j := range blk {
				bout[j] = true
				idx[j] = int32(j)
			}
			n = len(blk)
		}
		for i := f.k - 1; i >= 0 && n > 0; i-- {
			lvl := f.levels[i]
			ws := f.wshift[i]
			mask := lowMask(ws)
			seg := &f.segs[f.segID[i]]
			m := f.mods[i]
			permSeed := uint64(i) | 0x0e7a<<48
			for r := 0; r < f.replicas[i] && n > 0; r++ {
				seed := f.seeds[i][r]
				// Phase 1: compute every survivor's probe position — a
				// pure ALU loop over L1-resident keys. Phase 2: load the
				// storage word behind every probe back to back — the loads
				// are independent, so their (mostly L2/L3) misses overlap
				// instead of each waiting behind the next key's hash
				// chain, and the next layer's words start arriving while
				// this layer's survivors are still being compacted.
				// Phase 3: test the bits against the L1-resident copies
				// and compact the survivor list.
				if f.permute {
					for t, j := range idx[:n] {
						prefix := blk[j] >> lvl
						off := prefix & mask
						if hashutil.Hash64(prefix, permSeed)&1 == 1 {
							off = mask - off
						}
						pos[t] = m.mod(hashutil.Hash64(prefix>>ws, seed))<<ws + off
					}
				} else {
					for t, j := range idx[:n] {
						prefix := blk[j] >> lvl
						pos[t] = m.mod(hashutil.Hash64(prefix>>ws, seed))<<ws + prefix&mask
					}
				}
				for t := 0; t < n; t++ {
					words[t] = seg.loadWord(pos[t])
				}
				live := 0
				for t, j := range idx[:n] {
					if words[t]&(1<<(pos[t]&63)) != 0 {
						idx[live] = j
						live++
					} else {
						bout[j] = false
					}
				}
				n = live
			}
		}
	}
}

// MayContainRangeBatch tests every [lo, hi] pair in ranges and stores the
// verdicts in out, which must have the same length as ranges (it panics
// otherwise). out[j] is exactly MayContainRange(ranges[j][0], ranges[j][1]).
// Zero allocations; safe for concurrent use with Insert.
func (f *Filter) MayContainRangeBatch(ranges [][2]uint64, out []bool) {
	if len(out) != len(ranges) {
		panic("core: MayContainRangeBatch len(out) != len(ranges)")
	}
	for j, r := range ranges {
		out[j] = f.MayContainRange(r[0], r[1])
	}
}
