package core

import (
	"math/rand"
	"slices"
	"testing"
)

// TestFig7Decomposition pins the paper's Fig. 7 / §4 example: for d = 16,
// Δ = 4 (levels 0,4,8,12) the query I = [45,60] probes the coverings
// J_12 = [0,4095], J_8 = [0,255], J_4^l = [32,47], J_4^r = [48,63] and the
// decomposition runs [45,47] and [48,60] on level 0.
func TestFig7Decomposition(t *testing.T) {
	checks := DecomposeChecks(45, 60, []int{0, 4, 8, 12})
	want := []Check{
		{Level: 12, Lo: 0, Hi: 0, Covering: true}, // J_12 = [0,4095]
		{Level: 8, Lo: 0, Hi: 0, Covering: true},  // J_8 = [0,255]
		{Level: 4, Lo: 2, Hi: 2, Covering: true},  // J_4^l = [32,47]
		{Level: 4, Lo: 3, Hi: 3, Covering: true},  // J_4^r = [48,63]
		{Level: 0, Lo: 45, Hi: 47},                // I^l = [45,47]
		{Level: 0, Lo: 48, Hi: 60},                // I^r = [48,60]
	}
	if len(checks) != len(want) {
		t.Fatalf("got %d checks %+v, want %d", len(checks), checks, len(want))
	}
	for i, w := range want {
		if checks[i] != w {
			t.Errorf("check %d = %+v, want %+v", i, checks[i], w)
		}
	}
	// The decomposition intervals [45,47] and [48,60] exactly tile the
	// query minus nothing: their union must be [45,60].
	lo1, hi1 := checks[4].KeyRange()
	lo2, hi2 := checks[5].KeyRange()
	if lo1 != 45 || hi1 != 47 || lo2 != 48 || hi2 != 60 {
		t.Errorf("key ranges [%d,%d] [%d,%d], want [45,47] [48,60]", lo1, hi1, lo2, hi2)
	}
}

// TestDecomposeTilesQuery: for random queries, the non-covering checks must
// exactly tile [lo,hi] — disjoint and with union equal to the query.
func TestDecomposeTilesQuery(t *testing.T) {
	levels := []int{0, 4, 8, 12}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5000; trial++ {
		lo := rng.Uint64() & 0xFFFF
		hi := rng.Uint64() & 0xFFFF
		if lo > hi {
			lo, hi = hi, lo
		}
		checks := DecomposeChecks(lo, hi, levels)
		// Collect decomposition intervals and sort-merge them.
		type iv struct{ a, b uint64 }
		var ivs []iv
		for _, c := range checks {
			if c.Covering {
				continue
			}
			a, b := c.KeyRange()
			ivs = append(ivs, iv{a, b})
		}
		if len(ivs) == 0 {
			t.Fatalf("[%d,%d]: no decomposition intervals", lo, hi)
		}
		// The traversal emits left-path runs before right-path runs per
		// layer but across layers they interleave; sort by start.
		for i := 0; i < len(ivs); i++ {
			for j := i + 1; j < len(ivs); j++ {
				if ivs[j].a < ivs[i].a {
					ivs[i], ivs[j] = ivs[j], ivs[i]
				}
			}
		}
		if ivs[0].a != lo {
			t.Fatalf("[%d,%d]: tiles start at %d", lo, hi, ivs[0].a)
		}
		for i := 1; i < len(ivs); i++ {
			if ivs[i].a != ivs[i-1].b+1 {
				t.Fatalf("[%d,%d]: gap/overlap between [%d,%d] and [%d,%d]",
					lo, hi, ivs[i-1].a, ivs[i-1].b, ivs[i].a, ivs[i].b)
			}
		}
		if ivs[len(ivs)-1].b != hi {
			t.Fatalf("[%d,%d]: tiles end at %d", lo, hi, ivs[len(ivs)-1].b)
		}
	}
}

// TestDecomposeCoveringCount: at most 2 coverings and 2 decomposition runs
// per level — the constant-work guarantee behind O(k) range lookups.
func TestDecomposeCoveringCount(t *testing.T) {
	levels := []int{0, 7, 14, 21, 28, 35, 42}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 2000; trial++ {
		lo := rng.Uint64()
		hi := lo + rng.Uint64()%(1<<40)
		if hi < lo {
			hi = ^uint64(0)
		}
		perLevelCov := map[int]int{}
		perLevelDec := map[int]int{}
		for _, c := range DecomposeChecks(lo, hi, levels) {
			if c.Covering {
				perLevelCov[c.Level]++
			} else {
				perLevelDec[c.Level]++
			}
		}
		for lvl, n := range perLevelCov {
			if n > 2 {
				t.Fatalf("[%d,%d]: %d coverings at level %d", lo, hi, n, lvl)
			}
		}
		for lvl, n := range perLevelDec {
			if n > 2 && lvl != levels[len(levels)-1] {
				t.Fatalf("[%d,%d]: %d decomposition runs at level %d", lo, hi, n, lvl)
			}
		}
	}
}

// TestNoFalseNegativesRangeExhaustive inserts keys into a small-domain
// filter and verifies every possible range answer against brute force:
// ranges containing a key must be positive.
func TestNoFalseNegativesRangeExhaustive(t *testing.T) {
	cfg := basicConfigDomain(16, 64, 16)
	cfg.Deltas = []int{4, 4, 4, 4}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	present := map[uint64]bool{}
	var keys []uint64
	for i := 0; i < 64; i++ {
		k := rng.Uint64() & 0xFFFF
		present[k] = true
		keys = append(keys, k)
		f.Insert(k)
	}
	// Sorted keys for brute-force interval emptiness.
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	nonEmpty := func(lo, hi uint64) bool {
		for _, k := range keys {
			if k >= lo && k <= hi {
				return true
			}
		}
		return false
	}
	for trial := 0; trial < 30000; trial++ {
		lo := rng.Uint64() & 0xFFFF
		span := rng.Uint64() % 1024
		hi := lo + span
		if hi > 0xFFFF {
			hi = 0xFFFF
		}
		if nonEmpty(lo, hi) && !f.MayContainRange(lo, hi) {
			t.Fatalf("false negative for range [%d,%d]", lo, hi)
		}
	}
}

// TestNoFalseNegativesRangeAllConfigs runs the invariant across layouts:
// basic, multi-segment, replicated, exact top layer, permuted words.
func TestNoFalseNegativesRangeAllConfigs(t *testing.T) {
	configs := map[string]Config{
		"basic": func() Config {
			c := basicConfigDomain(24, 200, 12)
			return c
		}(),
		"segments": {
			Domain: 24, Deltas: []int{7, 7, 4, 2}, SegBits: []uint64{2048, 1024},
			SegmentOf: []int{0, 0, 1, 1}, Replicas: []int{1, 1, 1, 2},
		},
		"exact": {
			Domain: 24, Deltas: []int{7, 7}, SegBits: []uint64{2048},
			Exact: true, // exact bitmap of 2^10 bits at level 14
		},
		"permuted": {
			Domain: 24, Deltas: []int{7, 7, 7}, SegBits: []uint64{2048},
			PermuteWords: true,
		},
		"tinywords": {
			Domain: 24, Deltas: []int{1, 2, 3, 4, 5, 6}, SegBits: []uint64{4096},
		},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			f, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(10))
			var keys []uint64
			for i := 0; i < 200; i++ {
				k := rng.Uint64() & ((1 << 24) - 1)
				keys = append(keys, k)
				f.Insert(k)
			}
			for trial := 0; trial < 20000; trial++ {
				k := keys[rng.Intn(len(keys))]
				spanL := rng.Uint64() % (1 << uint(rng.Intn(20)))
				spanR := rng.Uint64() % (1 << uint(rng.Intn(20)))
				lo := k - min(k, spanL)
				hi := k + min(((1<<24)-1)-k, spanR)
				if !f.MayContainRange(lo, hi) {
					t.Fatalf("false negative: key %d in range [%d,%d]", k, lo, hi)
				}
			}
			// Point probes must also never miss.
			for _, k := range keys {
				if !f.MayContain(k) {
					t.Fatalf("point false negative for %d", k)
				}
			}
		})
	}
}

// TestExactLayerAuthoritative: with an exact top bitmap, a range whose
// middle spans exact-level DIs that contain keys must hit, and an empty
// aligned exact-level DI must answer definitively false.
func TestExactLayerAuthoritative(t *testing.T) {
	cfg := Config{Domain: 24, Deltas: []int{7, 7}, SegBits: []uint64{4096}, Exact: true}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	levels := f.Levels()
	exactLevel := uint(levels[len(levels)-1]) // 14
	f.Insert(5 << exactLevel)                 // one key in exact DI #5

	// Query covering DIs 3..7 at the exact level: middle contains DI 5.
	lo := uint64(3)<<exactLevel + 1 // unaligned left
	hi := uint64(7)<<exactLevel + 2 // unaligned right
	if !f.MayContainRange(lo, hi) {
		t.Fatal("range over occupied exact DI must be positive")
	}
	// An exactly aligned empty DI is a definitive negative regardless of
	// the probabilistic layers' state.
	if f.MayContainRange(9<<exactLevel, 10<<exactLevel-1) {
		t.Fatal("aligned empty exact DI must be negative")
	}
}

// TestRangeFPRSanity checks the range FPR is controlled for R within the
// basic design envelope (R ≤ 2^14 per §7 Observation).
func TestRangeFPRSanity(t *testing.T) {
	const n = 20000
	f := NewBasic(n, 18)
	rng := rand.New(rand.NewSource(11))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Insert(keys[i])
	}
	sortU64(keys)
	const R = 1 << 10
	fp, probes := 0, 0
	for probes < 5000 {
		lo := rng.Uint64()
		if lo > ^uint64(0)-R {
			continue
		}
		hi := lo + R - 1
		if hasKeyInRange(keys, lo, hi) {
			continue
		}
		probes++
		if f.MayContainRange(lo, hi) {
			fp++
		}
	}
	fpr := float64(fp) / float64(probes)
	if fpr > 0.20 {
		t.Fatalf("range FPR %.4f too high for 18 bits/key, R=2^10", fpr)
	}
}

// TestMaxScanGuard: an absurdly wide query over a basic filter exercises
// the conservative top-layer scan bound and must return true (maybe), not
// hang or report false.
func TestMaxScanGuard(t *testing.T) {
	cfg := BasicConfig(100, 10)
	cfg.MaxScanGroups = 8
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Insert(12345)
	if !f.MayContainRange(0, ^uint64(0)) {
		t.Fatal("guarded wide scan must answer maybe (true)")
	}
}

func TestReversedBoundsAccepted(t *testing.T) {
	f := NewBasic(100, 12)
	f.Insert(500)
	if !f.MayContainRange(600, 400) {
		t.Fatal("reversed bounds should behave as [400,600]")
	}
}

func sortU64(s []uint64) { slices.Sort(s) }

func hasKeyInRange(sorted []uint64, lo, hi uint64) bool {
	// binary search for first key >= lo
	a, b := 0, len(sorted)
	for a < b {
		mid := (a + b) / 2
		if sorted[mid] < lo {
			a = mid + 1
		} else {
			b = mid
		}
	}
	return a < len(sorted) && sorted[a] <= hi
}
