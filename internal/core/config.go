// Package core implements bloomRF, a unified point-range filter based on
// prefix hashing and piecewise-monotone hash functions (PMHF), as described
// in "bloomRF: On Performing Range-Queries in Bloom-Filters with
// Piecewise-Monotone Hash Functions and Prefix Hashing" (EDBT 2023).
//
// A bloomRF filter stores keys from a d-bit integer domain. Each key is
// inserted on k layers; layer i records the key's prefix on dyadic level
// ℓ_i (the key right-shifted by ℓ_i bits). Because a prefix on level ℓ
// identifies the dyadic interval of size 2^ℓ containing the key, the filter
// can answer range queries by testing O(k) dyadic intervals, independent of
// the query range size (§4, Algorithm 1 of the paper).
//
// The PMHF of layer i maps a prefix to a bit position as
//
//	MH_i(x) = (h_i(x >> (ℓ_i + Δ_i − 1)) mod words_i) · W_i  +  ((x >> ℓ_i) & (W_i − 1))
//
// with word size W_i = 2^(Δ_i−1) bits, so the W_i prefixes sharing a hash
// input land side by side in one word and a contiguous run of dyadic
// intervals is testable with a single masked word access.
package core

import (
	"errors"
	"fmt"
)

// MaxDelta is the largest supported distance between adjacent levels.
// Δ = 7 yields 64-bit words, the widest word a single uint64 access covers.
const MaxDelta = 7

// DefaultMaxScanGroups bounds the number of hashed word groups a single
// range decomposition check may probe at the top layer. Queries whose
// top-layer middle run exceeds the bound return "maybe" (a conservative
// positive), preserving the no-false-negative guarantee. The optimized
// configurations with an exact top layer never hit this bound because their
// middle runs are resolved by the exact bitmap instead.
const DefaultMaxScanGroups = 1 << 20

// Config fully describes a bloomRF layout. The zero value is not usable;
// construct configs with BasicConfig, Tune, or by hand followed by Validate.
//
// Layers are indexed bottom-up: layer 0 is the finest (level ℓ_0 = 0),
// layer k−1 the coarsest probabilistic layer. Deltas[i] is the distance
// between level ℓ_i and ℓ_{i+1}, so ℓ_i = Deltas[0] + … + Deltas[i−1].
// If Exact is true, the level ℓ_k = ΣDeltas is stored as an exact bitmap of
// 2^(Domain−ℓ_k) bits (§7 "Memory Management"); all levels above it are
// discarded as saturated.
type Config struct {
	// Domain is d, the number of significant key bits (1..64).
	Domain int

	// Deltas holds Δ_i per layer, bottom-up. len(Deltas) = k ≥ 1,
	// each in [1, MaxDelta].
	Deltas []int

	// Replicas holds r_i ≥ 1 per layer: the number of hash functions that
	// write a word for layer i (§7 "Replicated Hash-Functions"). A nil
	// slice means one per layer.
	Replicas []int

	// SegmentOf assigns each layer to a probabilistic memory segment
	// (index into SegBits). A nil slice assigns every layer to segment 0.
	SegmentOf []int

	// SegBits holds the size in bits of each probabilistic segment; each
	// must be a positive multiple of 64.
	SegBits []uint64

	// Exact declares an exact bitmap layer at level ΣDeltas.
	Exact bool

	// PermuteWords enables the §3.2 mitigation for degenerate data
	// distributions: each word's bit order is reversed or not depending
	// on a hash of its word-group, which breaks key patterns that would
	// otherwise pile every layer onto the same in-word offset.
	PermuteWords bool

	// MaxScanGroups overrides DefaultMaxScanGroups when > 0.
	MaxScanGroups int
}

// K returns the number of probabilistic layers.
func (c *Config) K() int { return len(c.Deltas) }

// Levels returns ℓ_0..ℓ_k (k+1 values); the last entry is the exact level
// when Exact is set, and otherwise the first discarded level.
func (c *Config) Levels() []int {
	ls := make([]int, len(c.Deltas)+1)
	for i, d := range c.Deltas {
		ls[i+1] = ls[i] + d
	}
	return ls
}

// ExactBits returns the exact bitmap size in bits (0 when Exact is unset).
func (c *Config) ExactBits() uint64 {
	if !c.Exact {
		return 0
	}
	ls := c.Levels()
	return uint64(1) << uint(c.Domain-ls[len(ls)-1])
}

// TotalBits returns the filter's total memory footprint in bits.
func (c *Config) TotalBits() uint64 {
	var t uint64
	for _, s := range c.SegBits {
		t += s
	}
	return t + c.ExactBits()
}

// Validate checks structural invariants and returns a descriptive error for
// the first violation found.
func (c *Config) Validate() error {
	if c.Domain < 1 || c.Domain > 64 {
		return fmt.Errorf("core: domain %d out of range [1,64]", c.Domain)
	}
	k := len(c.Deltas)
	if k == 0 {
		return errors.New("core: need at least one layer")
	}
	sum := 0
	for i, d := range c.Deltas {
		if d < 1 || d > MaxDelta {
			return fmt.Errorf("core: Deltas[%d]=%d out of range [1,%d]", i, d, MaxDelta)
		}
		sum += d
	}
	if sum > c.Domain {
		return fmt.Errorf("core: ΣDeltas=%d exceeds domain %d", sum, c.Domain)
	}
	if c.Exact && c.Domain-sum > 40 {
		return fmt.Errorf("core: exact bitmap of 2^%d bits is unreasonably large", c.Domain-sum)
	}
	if c.Replicas != nil {
		if len(c.Replicas) != k {
			return fmt.Errorf("core: len(Replicas)=%d, want %d", len(c.Replicas), k)
		}
		for i, r := range c.Replicas {
			if r < 1 {
				return fmt.Errorf("core: Replicas[%d]=%d, want ≥1", i, r)
			}
		}
	}
	if len(c.SegBits) == 0 {
		return errors.New("core: need at least one segment")
	}
	for s, b := range c.SegBits {
		if b == 0 || b%64 != 0 {
			return fmt.Errorf("core: SegBits[%d]=%d must be a positive multiple of 64", s, b)
		}
	}
	if c.SegmentOf != nil {
		if len(c.SegmentOf) != k {
			return fmt.Errorf("core: len(SegmentOf)=%d, want %d", len(c.SegmentOf), k)
		}
		for i, s := range c.SegmentOf {
			if s < 0 || s >= len(c.SegBits) {
				return fmt.Errorf("core: SegmentOf[%d]=%d out of range [0,%d)", i, s, len(c.SegBits))
			}
		}
	} else if len(c.SegBits) != 1 {
		return errors.New("core: SegmentOf required with multiple segments")
	}
	return nil
}

// BasicConfig returns the tuning-free basic bloomRF layout of §3–5: uniform
// Δ = 7 (64-bit words), k = ⌈(d − log2 n)/Δ⌉ layers, a single shared segment
// of n·bitsPerKey bits, one hash function per layer and no exact layer.
// Basic bloomRF is recommended for query ranges up to about 2^14; use Tune
// for larger ranges.
func BasicConfig(n uint64, bitsPerKey float64) Config {
	return basicConfigDomain(64, n, bitsPerKey)
}

func basicConfigDomain(d int, n uint64, bitsPerKey float64) Config {
	if n == 0 {
		n = 1
	}
	// k = ⌈(d − log2 n)/Δ⌉ (§3.1), dropping top layers that saturate: a
	// layer at level ℓ is kept only while its 2^(d−ℓ) dyadic intervals
	// stay under 25% expected occupancy (§7 "Memory Management"); this
	// reproduces the paper's k = 6 for n = 2M, d = 64, Δ = 7 and k = 4 for
	// the introductory n = 3, d = 16, Δ = 4 example.
	k := 0
	for lvl := 0; lvl+MaxDelta <= d; lvl += MaxDelta {
		room := d - lvl - 2
		if room < 64 && n >= uint64(1)<<uint(room) {
			break
		}
		k++
	}
	if k < 1 {
		k = 1
	}
	m := uint64(float64(n) * bitsPerKey)
	if m < 64 {
		m = 64
	}
	m = (m + 63) &^ 63
	deltas := make([]int, k)
	for i := range deltas {
		deltas[i] = MaxDelta
	}
	return Config{
		Domain:  d,
		Deltas:  deltas,
		SegBits: []uint64{m},
	}
}
