package core

import (
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentInsertProbe exercises the online claim (Experiment 4):
// inserts and probes run concurrently without locks; keys inserted before a
// probe starts must never be missed. Run with -race.
func TestConcurrentInsertProbe(t *testing.T) {
	f := NewBasic(100_000, 14)
	const (
		writers = 4
		readers = 4
		perG    = 5000
	)
	// Pre-insert a base set readers will verify while writers add more.
	base := make([]uint64, 10_000)
	rng := rand.New(rand.NewSource(60))
	for i := range base {
		base[i] = rng.Uint64()
		f.Insert(base[i])
	}
	var wg sync.WaitGroup
	errCh := make(chan error, readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				f.Insert(r.Uint64())
			}
		}(int64(100 + w))
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				k := base[r.Intn(len(base))]
				if !f.MayContain(k) {
					errCh <- &probeError{k}
					return
				}
				lo := k - min(k, 100)
				hi := k + min(^uint64(0)-k, 100)
				if !f.MayContainRange(lo, hi) {
					errCh <- &probeError{k}
					return
				}
			}
		}(int64(200 + g))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

type probeError struct{ key uint64 }

func (e *probeError) Error() string { return "concurrent probe missed pre-inserted key" }

// TestConcurrentTunedFilter runs the same check against a tuned layout with
// an exact segment and replicated hash functions.
func TestConcurrentTunedFilter(t *testing.T) {
	f, _, err := NewTuned(TuneOptions{N: 50_000, BitsPerKey: 16, MaxRange: 1 << 28})
	if err != nil {
		t.Fatal(err)
	}
	base := make([]uint64, 5000)
	rng := rand.New(rand.NewSource(61))
	for i := range base {
		base[i] = rng.Uint64()
		f.Insert(base[i])
	}
	var wg sync.WaitGroup
	fail := make(chan uint64, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 3000; i++ {
				if i%2 == 0 {
					f.Insert(r.Uint64())
				} else {
					k := base[r.Intn(len(base))]
					if !f.MayContain(k) {
						select {
						case fail <- k:
						default:
						}
						return
					}
				}
			}
		}(int64(300 + g))
	}
	wg.Wait()
	close(fail)
	if k, ok := <-fail; ok {
		t.Fatalf("tuned filter missed pre-inserted key %d under concurrency", k)
	}
}
