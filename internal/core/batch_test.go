package core

import (
	"math/rand"
	"testing"
)

// batchTestConfigs covers the layout features the batch paths special-case:
// plain basic layouts, permuted words, replicated hash functions, multiple
// segments and an exact top layer, plus a sub-64-bit domain.
func batchTestConfigs(t *testing.T) map[string]*Filter {
	t.Helper()
	fs := map[string]*Filter{
		"basic": NewBasic(20_000, 14),
	}
	tuned, _, err := NewTuned(TuneOptions{N: 20_000, BitsPerKey: 16, MaxRange: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	fs["tuned"] = tuned
	manual, err := New(Config{
		Domain:       64,
		Deltas:       []int{7, 6, 7, 5},
		Replicas:     []int{2, 1, 1, 2},
		SegmentOf:    []int{0, 0, 1, 1},
		SegBits:      []uint64{1 << 17, 1 << 15},
		Exact:        true,
		PermuteWords: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs["permute-replicas-segments"] = manual
	narrow, err := New(Config{
		Domain:  32,
		Deltas:  []int{7, 7},
		SegBits: []uint64{1 << 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	fs["domain32"] = narrow
	return fs
}

// TestBatchEquivalence checks that the batch APIs return bit-identical
// answers to the single-key calls over random workloads.
func TestBatchEquivalence(t *testing.T) {
	for name, f := range batchTestConfigs(t) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			dmask := lowMask(f.domain)
			ins := make([]uint64, 10_000)
			for i := range ins {
				if i%3 == 0 {
					ins[i] = rng.Uint64() & dmask >> 20 // cluster low keys
				} else {
					ins[i] = rng.Uint64() & dmask
				}
			}
			// Insert half through the batch path, half singly; both
			// populations must be visible to both query paths.
			f.InsertBatch(ins[:len(ins)/2])
			for _, x := range ins[len(ins)/2:] {
				f.Insert(x)
			}

			queries := make([]uint64, 4_000)
			for i := range queries {
				if i%2 == 0 {
					queries[i] = ins[rng.Intn(len(ins))] // present
				} else {
					queries[i] = rng.Uint64() & dmask // mostly absent
				}
			}
			got := make([]bool, len(queries))
			f.MayContainBatch(queries, got)
			for j, x := range queries {
				if want := f.MayContain(x); got[j] != want {
					t.Fatalf("MayContainBatch[%d] key %#x = %v, single = %v", j, x, got[j], want)
				}
			}

			ranges := make([][2]uint64, 2_000)
			for i := range ranges {
				lo := rng.Uint64() & dmask
				width := uint64(1) << uint(rng.Intn(30))
				hi := lo + rng.Uint64()%width
				if i%5 == 0 {
					lo, hi = hi, lo // reversed bounds are accepted
				}
				ranges[i] = [2]uint64{lo, hi}
			}
			rgot := make([]bool, len(ranges))
			f.MayContainRangeBatch(ranges, rgot)
			for j, r := range ranges {
				if want := f.MayContainRange(r[0], r[1]); rgot[j] != want {
					t.Fatalf("MayContainRangeBatch[%d] [%#x,%#x] = %v, single = %v", j, r[0], r[1], rgot[j], want)
				}
			}
		})
	}
}

// TestBatchInsertEquivalence checks that a filter populated via InsertBatch
// probes identically to one populated via Insert.
func TestBatchInsertEquivalence(t *testing.T) {
	fb := NewBasic(20_000, 14)
	fs := NewBasic(20_000, 14)
	rng := rand.New(rand.NewSource(8))
	keys := make([]uint64, 20_000)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	fb.InsertBatch(keys)
	for _, x := range keys {
		fs.Insert(x)
	}
	for s := 0; s < fb.NumSegments(); s++ {
		a, b := fb.SegmentSnapshot(s), fs.SegmentSnapshot(s)
		for w := range a {
			if a[w] != b[w] {
				t.Fatalf("segment %d word %d differs: batch %#x single %#x", s, w, a[w], b[w])
			}
		}
	}
}

// TestBatchEmptyAndMismatch pins the edge-case contract: empty inputs are
// no-ops, length mismatches panic.
func TestBatchEmptyAndMismatch(t *testing.T) {
	f := NewBasic(1_000, 14)
	f.InsertBatch(nil)
	f.MayContainBatch(nil, nil)
	f.MayContainRangeBatch(nil, nil)

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic on length mismatch", name)
			}
		}()
		fn()
	}
	mustPanic("MayContainBatch", func() {
		f.MayContainBatch(make([]uint64, 3), make([]bool, 2))
	})
	mustPanic("MayContainRangeBatch", func() {
		f.MayContainRangeBatch(make([][2]uint64, 2), make([]bool, 3))
	})
}

// TestBatchHashOverride checks that the batch paths honor the test-only
// hash override by falling back to the single-key implementation.
func TestBatchHashOverride(t *testing.T) {
	f := NewBasic(1_000, 14)
	f.hashOverride = func(layer, replica int, g uint64) uint64 { return 41*g + 13 }
	f.InsertBatch([]uint64{5, 9})
	out := make([]bool, 3)
	f.MayContainBatch([]uint64{5, 9, 77}, out)
	for j, x := range []uint64{5, 9, 77} {
		if want := f.MayContain(x); out[j] != want {
			t.Fatalf("override: batch[%d]=%v single=%v", j, out[j], want)
		}
	}
	if !out[0] || !out[1] {
		t.Fatal("override: inserted keys must be found")
	}
}

// TestModulus checks the 128-bit fastmod against hardware division for the
// divisor shapes the filter produces (word counts) plus adversarial values.
func TestModulus(t *testing.T) {
	divs := []uint64{1, 2, 3, 5, 63, 64, 1000, 1 << 20, (1 << 20) + 7, ^uint64(0), ^uint64(0) - 1}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 64; i++ {
		divs = append(divs, rng.Uint64()|1, rng.Uint64()>>uint(rng.Intn(40)))
	}
	hs := []uint64{0, 1, 2, 63, 64, ^uint64(0), ^uint64(0) - 1}
	for i := 0; i < 1000; i++ {
		hs = append(hs, rng.Uint64())
	}
	for _, d := range divs {
		if d == 0 {
			continue
		}
		m := newModulus(d)
		for _, h := range hs {
			if got, want := m.mod(h), h%d; got != want {
				t.Fatalf("fastmod(%d, %d) = %d, want %d", h, d, got, want)
			}
		}
	}
}
