package core

import (
	"math/bits"
	"sync/atomic"
)

// bitArray is a fixed-size bit array backed by uint64 storage. Writers use
// atomic OR and readers atomic loads, so concurrent inserts and probes are
// race-free without locking — bloomRF is an online, parallel structure
// (paper §1 contribution (a), evaluated in Experiment 4).
type bitArray struct {
	words []uint64
}

func newBitArray(nbits uint64) bitArray {
	return bitArray{words: make([]uint64, (nbits+63)/64)}
}

// setBit atomically sets the bit at pos.
func (b *bitArray) setBit(pos uint64) {
	atomic.OrUint64(&b.words[pos>>6], 1<<(pos&63))
}

// getBit reports whether the bit at pos is set.
func (b *bitArray) getBit(pos uint64) bool {
	return atomic.LoadUint64(&b.words[pos>>6])&(1<<(pos&63)) != 0
}

// loadWord returns the whole storage word containing bit position pos. The
// batch probe path gathers one word per pending probe through it in a tight
// load-only loop: the loads carry no dependencies on each other, so the
// memory system overlaps their cache misses (getBit's load+test per call
// hides that parallelism behind the branch on each result).
func (b *bitArray) loadWord(pos uint64) uint64 {
	return atomic.LoadUint64(&b.words[pos>>6])
}

// loadSub extracts a wbits-wide sub-word starting at the aligned bit
// position pos (pos must be a multiple of wbits, wbits a power of two ≤ 64),
// so a filter word never straddles two storage words.
func (b *bitArray) loadSub(pos uint64, wbits uint) uint64 {
	w := atomic.LoadUint64(&b.words[pos>>6])
	if wbits == 64 {
		return w
	}
	return (w >> (pos & 63)) & ((1 << wbits) - 1)
}

// anySet reports whether any bit in the inclusive bit range [lo, hi] is set.
// It scans whole storage words between the masked boundary words.
func (b *bitArray) anySet(lo, hi uint64) bool {
	wl, wh := lo>>6, hi>>6
	maskLo := ^uint64(0) << (lo & 63)
	maskHi := ^uint64(0) >> (63 - hi&63)
	if wl == wh {
		return atomic.LoadUint64(&b.words[wl])&maskLo&maskHi != 0
	}
	if atomic.LoadUint64(&b.words[wl])&maskLo != 0 {
		return true
	}
	for w := wl + 1; w < wh; w++ {
		if atomic.LoadUint64(&b.words[w]) != 0 {
			return true
		}
	}
	return atomic.LoadUint64(&b.words[wh])&maskHi != 0
}

// onesCount returns the number of set bits.
func (b *bitArray) onesCount() uint64 {
	var c uint64
	for i := range b.words {
		c += uint64(bits.OnesCount64(b.words[i]))
	}
	return c
}

// size returns the capacity in bits.
func (b *bitArray) size() uint64 { return uint64(len(b.words)) * 64 }

// snapshot returns a copy of the raw storage words (for scatter analysis
// and serialization).
func (b *bitArray) snapshot() []uint64 {
	out := make([]uint64, len(b.words))
	for i := range b.words {
		out[i] = atomic.LoadUint64(&b.words[i])
	}
	return out
}

// lowMask returns a mask of the low n bits, handling n ≥ 64.
func lowMask(n uint) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (1 << n) - 1
}

// rsh is x >> n with n possibly ≥ 64 (Go already defines this as 0 for
// uint64, the helper exists to make call sites self-documenting).
func rsh(x uint64, n uint) uint64 {
	if n >= 64 {
		return 0
	}
	return x >> n
}
