package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/hashutil"
)

// Serialization format (little endian):
//
//	magic "bRF1" | version u8 | domain u8 | k u8 | flags u8
//	deltas k×u8 | replicas k×u8 | segmentOf k×u8
//	nsegs u8 | segBits nsegs×u64 | maxScan u32
//	exactWords u64 | exact payload | per-segment payload
//	checksum u64 (hash of everything before it)
//
// Hash seeds are derived deterministically from layer/replica indices, so
// they are not stored: a deserialized filter probes identical positions.
// This is the "filter block" format persisted in SSTables (paper §9).
const (
	serMagic   = "bRF1"
	serVersion = 1

	flagExact   = 1 << 0
	flagPermute = 1 << 1
)

// ErrCorrupt is returned when a filter block fails structural or checksum
// validation.
var ErrCorrupt = errors.New("core: corrupt filter block")

// MarshalBinary serializes the filter. Concurrent Insert calls during
// serialization yield a consistent-enough snapshot for filter semantics
// (bits may lag, never flip back), but callers that need an exact snapshot
// should quiesce writers first.
func (f *Filter) MarshalBinary() ([]byte, error) {
	k := f.k
	size := 4 + 4 + 3*k + 1 + 8*len(f.segs) + 4 + 8
	size += 8 * len(f.exact.words)
	for i := range f.segs {
		size += 8 * len(f.segs[i].words)
	}
	size += 8 // checksum
	buf := make([]byte, 0, size)
	buf = append(buf, serMagic...)
	flags := byte(0)
	if f.hasExact {
		flags |= flagExact
	}
	if f.permute {
		flags |= flagPermute
	}
	buf = append(buf, serVersion, byte(f.domain), byte(k), flags)
	for _, d := range f.cfg.Deltas {
		buf = append(buf, byte(d))
	}
	for i := 0; i < k; i++ {
		buf = append(buf, byte(f.replicas[i]))
	}
	for i := 0; i < k; i++ {
		buf = append(buf, byte(f.segID[i]))
	}
	buf = append(buf, byte(len(f.segs)))
	for i := range f.segs {
		buf = binary.LittleEndian.AppendUint64(buf, f.segs[i].size())
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.maxScan))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(f.exact.words)))
	for _, w := range f.exact.snapshot() {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	for i := range f.segs {
		for _, w := range f.segs[i].snapshot() {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	}
	buf = binary.LittleEndian.AppendUint64(buf, hashutil.HashBytes(buf, 0))
	return buf, nil
}

// UnmarshalFilter reconstructs a filter from MarshalBinary output.
func UnmarshalFilter(data []byte) (*Filter, error) {
	if len(data) < 16+8 || string(data[:4]) != serMagic {
		return nil, ErrCorrupt
	}
	body, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	if hashutil.HashBytes(body, 0) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	r := &byteReader{data: body[4:]}
	version, _ := r.u8()
	if version != serVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, version)
	}
	domain, _ := r.u8()
	k, _ := r.u8()
	flags, err := r.u8()
	if err != nil || k == 0 {
		return nil, ErrCorrupt
	}
	cfg := Config{
		Domain:       int(domain),
		Exact:        flags&flagExact != 0,
		PermuteWords: flags&flagPermute != 0,
		Deltas:       make([]int, k),
		Replicas:     make([]int, k),
		SegmentOf:    make([]int, k),
	}
	for i := range cfg.Deltas {
		b, err := r.u8()
		if err != nil {
			return nil, ErrCorrupt
		}
		cfg.Deltas[i] = int(b)
	}
	for i := range cfg.Replicas {
		b, err := r.u8()
		if err != nil {
			return nil, ErrCorrupt
		}
		cfg.Replicas[i] = int(b)
	}
	for i := range cfg.SegmentOf {
		b, err := r.u8()
		if err != nil {
			return nil, ErrCorrupt
		}
		cfg.SegmentOf[i] = int(b)
	}
	nsegs, err := r.u8()
	if err != nil || nsegs == 0 {
		return nil, ErrCorrupt
	}
	cfg.SegBits = make([]uint64, nsegs)
	for i := range cfg.SegBits {
		if cfg.SegBits[i], err = r.u64(); err != nil {
			return nil, ErrCorrupt
		}
	}
	maxScan, err := r.u32()
	if err != nil {
		return nil, ErrCorrupt
	}
	cfg.MaxScanGroups = int(maxScan)
	f, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	exactWords, err := r.u64()
	if err != nil || exactWords != uint64(len(f.exact.words)) {
		return nil, ErrCorrupt
	}
	for i := uint64(0); i < exactWords; i++ {
		if f.exact.words[i], err = r.u64(); err != nil {
			return nil, ErrCorrupt
		}
	}
	for s := range f.segs {
		for i := range f.segs[s].words {
			if f.segs[s].words[i], err = r.u64(); err != nil {
				return nil, ErrCorrupt
			}
		}
	}
	if r.len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.len())
	}
	return f, nil
}

type byteReader struct {
	data []byte
	off  int
}

func (r *byteReader) len() int { return len(r.data) - r.off }

func (r *byteReader) u8() (byte, error) {
	if r.off >= len(r.data) {
		return 0, ErrCorrupt
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *byteReader) u32() (uint32, error) {
	if r.off+4 > len(r.data) {
		return 0, ErrCorrupt
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

func (r *byteReader) u64() (uint64, error) {
	if r.off+8 > len(r.data) {
		return 0, ErrCorrupt
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v, nil
}
