package core

// Check describes one test the two-path range-lookup performs: either a
// covering (single dyadic interval containing a query bound, tested with
// one bit) or a run of decomposition intervals fully contained in the query
// (tested with masked word accesses). DecomposeChecks exposes the traversal
// structurally — assuming every covering test passes — for documentation,
// golden tests against the paper's Fig. 7, and cost analysis.
type Check struct {
	// Level is the dyadic level ℓ of the tested interval(s).
	Level int
	// Lo and Hi are the inclusive prefix bounds at Level. For a covering
	// Lo == Hi.
	Lo, Hi uint64
	// Covering distinguishes covering tests from decomposition tests.
	Covering bool
}

// KeyRange returns the key interval [lo, hi] covered by the check.
func (c Check) KeyRange() (lo, hi uint64) {
	return c.Lo << uint(c.Level), c.Hi<<uint(c.Level) | lowMask(uint(c.Level))
}

// DecomposeChecks returns, in top-down order, every check the two-path
// range lookup would perform for the query [lo, hi] over the given
// ascending dyadic levels (ℓ_0 .. ℓ_top), assuming all covering tests
// pass. levels[len(levels)-1] is the top tested level; levels above it are
// treated as saturated.
func DecomposeChecks(lo, hi uint64, levels []int) []Check {
	if lo > hi {
		lo, hi = hi, lo
	}
	var out []Check
	top := len(levels) - 1
	L := uint(levels[top])
	pl, pr := rsh(lo, L), rsh(hi, L)

	var covs [2]int
	ncov := 0
	switch {
	case pl == pr && alignedLeft(lo, L) && alignedRight(hi, L):
		return append(out, Check{Level: int(L), Lo: pl, Hi: pl})
	case pl == pr:
		out = append(out, Check{Level: int(L), Lo: pl, Hi: pl, Covering: true})
		covs[0] = covSingle
		ncov = 1
	default:
		la, lb := pl, pr
		if !alignedLeft(lo, L) {
			la = pl + 1
			out = append(out, Check{Level: int(L), Lo: pl, Hi: pl, Covering: true})
			covs[ncov] = covLeft
			ncov++
		}
		if !alignedRight(hi, L) {
			lb = pr - 1
			out = append(out, Check{Level: int(L), Lo: pr, Hi: pr, Covering: true})
			covs[ncov] = covRight
			ncov++
		}
		if la <= lb {
			out = append(out, Check{Level: int(L), Lo: la, Hi: lb})
		}
		if ncov == 0 {
			return out
		}
	}

	for i := top; i >= 1; i-- {
		childLevel := uint(levels[i-1])
		parentLevel := uint(levels[i])
		delta := parentLevel - childLevel
		var next [2]int
		n2 := 0
		for j := 0; j < ncov; j++ {
			switch covs[j] {
			case covSingle:
				cpl, cpr := rsh(lo, childLevel), rsh(hi, childLevel)
				if cpl == cpr {
					if alignedLeft(lo, childLevel) && alignedRight(hi, childLevel) {
						return append(out, Check{Level: int(childLevel), Lo: cpl, Hi: cpl})
					}
					out = append(out, Check{Level: int(childLevel), Lo: cpl, Hi: cpl, Covering: true})
					next[n2] = covSingle
					n2++
					continue
				}
				la, lb := cpl, cpr
				if !alignedLeft(lo, childLevel) {
					la = cpl + 1
					out = append(out, Check{Level: int(childLevel), Lo: cpl, Hi: cpl, Covering: true})
					next[n2] = covLeft
					n2++
				}
				if !alignedRight(hi, childLevel) {
					lb = cpr - 1
					out = append(out, Check{Level: int(childLevel), Lo: cpr, Hi: cpr, Covering: true})
					next[n2] = covRight
					n2++
				}
				if la <= lb {
					out = append(out, Check{Level: int(childLevel), Lo: la, Hi: lb})
				}
			case covLeft:
				cpl := rsh(lo, childLevel)
				parentEnd := rsh(lo, parentLevel)<<delta | (uint64(1)<<delta - 1)
				la := cpl
				if !alignedLeft(lo, childLevel) {
					la = cpl + 1
					out = append(out, Check{Level: int(childLevel), Lo: cpl, Hi: cpl, Covering: true})
					next[n2] = covLeft
					n2++
				}
				if la <= parentEnd {
					out = append(out, Check{Level: int(childLevel), Lo: la, Hi: parentEnd})
				}
			case covRight:
				cpr := rsh(hi, childLevel)
				parentStart := rsh(hi, parentLevel) << delta
				lb := cpr
				if !alignedRight(hi, childLevel) {
					lb = cpr - 1
					out = append(out, Check{Level: int(childLevel), Lo: cpr, Hi: cpr, Covering: true})
					next[n2] = covRight
					n2++
				}
				if parentStart <= lb {
					out = append(out, Check{Level: int(childLevel), Lo: parentStart, Hi: lb})
				}
			}
		}
		if n2 == 0 {
			return out
		}
		covs, ncov = next, n2
	}
	return out
}
