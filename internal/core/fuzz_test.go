package core

import (
	"bytes"
	"testing"
)

// fuzzSeedBlobs returns valid filter blocks across the layouts the format
// can express, as fuzz seeds: basic, tuned (exact layer + segments +
// replicas), and permuted.
func fuzzSeedBlobs(tb testing.TB) [][]byte {
	tb.Helper()
	var blobs [][]byte
	add := func(f *Filter, err error) {
		if err != nil {
			tb.Fatal(err)
		}
		for i := uint64(0); i < 200; i++ {
			f.Insert(i * 0x9e3779b97f4a7c15)
		}
		b, err := f.MarshalBinary()
		if err != nil {
			tb.Fatal(err)
		}
		blobs = append(blobs, b)
	}
	add(NewBasic(200, 12), nil)
	tf, _, err := NewTuned(TuneOptions{N: 200, BitsPerKey: 18, MaxRange: 1 << 24})
	add(tf, err)
	cfg := BasicConfig(200, 12)
	cfg.PermuteWords = true
	pf, err := New(cfg)
	add(pf, err)
	return blobs
}

// FuzzMarshalRoundTrip feeds arbitrary bytes to UnmarshalFilter. The
// contract under fuzzing: corrupt input returns an error — never a panic,
// never an out-of-range access — and input that does parse yields a usable
// filter whose re-marshaled block round-trips byte-identically. The
// trailing checksum makes accidental acceptance of a mutated blob
// effectively impossible, which TestUnmarshalRejectsCorruption pins
// deterministically byte by byte.
func FuzzMarshalRoundTrip(f *testing.F) {
	for _, blob := range fuzzSeedBlobs(f) {
		f.Add(blob)
	}
	f.Add([]byte{})
	f.Add([]byte("bRF1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := UnmarshalFilter(data)
		if err != nil {
			return // rejected; the implicit assertion is "no panic"
		}
		// Accepted blobs must describe a fully functional filter.
		g.Insert(42)
		if !g.MayContain(42) {
			t.Fatal("parsed filter drops inserts")
		}
		_ = g.MayContainRange(0, 1<<20)
		blob2, err := g.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted blob failed: %v", err)
		}
		h, err := UnmarshalFilter(blob2)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		blob3, err := h.MarshalBinary()
		if err != nil {
			t.Fatalf("third marshal failed: %v", err)
		}
		if !bytes.Equal(blob2, blob3) {
			t.Fatal("marshal not a fixed point after one round trip")
		}
	})
}

// TestUnmarshalRejectsEveryByteFlip corrupts each byte of a valid blob in
// turn; the trailing checksum must catch every one (a "corrupt blobs must
// return errors, never silently succeed" guarantee the fuzz target cannot
// assert because it lacks ground truth).
func TestUnmarshalRejectsEveryByteFlip(t *testing.T) {
	for _, blob := range fuzzSeedBlobs(t) {
		for i := range blob {
			c := append([]byte(nil), blob...)
			c[i] ^= 0x5a
			if _, err := UnmarshalFilter(c); err == nil {
				t.Fatalf("flip of byte %d/%d not detected", i, len(blob))
			}
		}
	}
}
