package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Log-linear bucket geometry, shared by every histogram in the system
// (op latency, per-phase latency, WAL fsync latency, replication lag
// bytes). Values are dimensionless int64s — the caller decides whether
// a bucket bound means nanoseconds or bytes.
const (
	// MinExp: values below 2^MinExp (4096) land in a single underflow
	// bucket. For nanoseconds that is 4.096µs, well under the cheapest
	// network round-trip.
	MinExp = 12
	// MaxExp: values at or above 2^MaxExp (~8.59e9) land in a single
	// overflow bucket. For nanoseconds that is ~8.6s.
	MaxExp = 33
	// SubBits: each power-of-two octave is split into Sub = 2^SubBits
	// linear sub-buckets, bounding relative quantization error at
	// 1/Sub = 12.5%.
	SubBits = 3
	// Sub is the number of linear sub-buckets per octave.
	Sub = 1 << SubBits

	// NumBuckets = underflow + (MaxExp-MinExp) octaves × Sub + overflow.
	NumBuckets = 1 + (MaxExp-MinExp)*Sub + 1
)

// Bucket maps a value to its bucket index.
func Bucket(v int64) int {
	if v < 1<<MinExp {
		return 0
	}
	if v >= 1<<MaxExp {
		return NumBuckets - 1
	}
	exp := bits.Len64(uint64(v)) - 1 // floor(log2 v), in [MinExp, MaxExp)
	sub := (v >> (uint(exp) - SubBits)) & (Sub - 1)
	return 1 + (exp-MinExp)*Sub + int(sub)
}

// BucketUpper returns the exclusive upper bound of bucket i (the value
// reported for quantiles that land in it). The overflow bucket reports
// 2^MaxExp.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 1 << MinExp
	}
	if i >= NumBuckets-1 {
		return 1 << MaxExp
	}
	i--
	exp := MinExp + i/Sub
	sub := int64(i%Sub) + 1
	return (1 << uint(exp)) + sub<<(uint(exp)-SubBits)
}

// Hist is a lock-free histogram: fixed atomic buckets plus a running
// sum. Observe is wait-free (two atomic adds); Read takes a relaxed
// snapshot that is consistent enough for monitoring.
type Hist struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value. Negative values clamp to zero.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[Bucket(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
}

// Read returns a point-in-time snapshot.
func (h *Hist) Read() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// HistSnapshot is an immutable copy of a Hist.
type HistSnapshot struct {
	Buckets [NumBuckets]uint64
	Count   uint64
	Sum     uint64
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 < q <= 1), i.e. an upper estimate with ≤12.5% relative
// error. Returns 0 for an empty snapshot; the overflow bucket reports
// 2^MaxExp.
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen uint64
	for i, c := range s.Buckets {
		seen += c
		if seen >= rank {
			return BucketUpper(i)
		}
	}
	return 1 << MaxExp
}
