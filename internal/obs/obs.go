// Package obs is the dependency-free observability core shared by the
// serving layer, the WAL, and the bench harness. It provides two
// primitives:
//
//   - Trace: a zero-allocation request-scoped phase tracer. A Trace is a
//     plain value (embeddable in pooled scratch structs) that records how
//     much wall time a request spent in each pipeline phase
//     (decode → admission-wait → shard-dispatch → probe → wal-append →
//     wal-fsync → encode). Phases are marked with Enter; the final
//     Finish closes the open phase and returns the total elapsed time.
//     Every method is allocation-free so the warm binary batch path keeps
//     its zero-alloc guarantee.
//
//   - Hist: a lock-free log-linear histogram over non-negative int64
//     values (nanoseconds, bytes, ...). It is the bucket scheme
//     introduced by the PR 7 latency histograms, generalized: values
//     below 2^MinExp share an underflow bucket, values at or above
//     2^MaxExp share an overflow bucket, and each power-of-two octave in
//     between is split into Sub linear sub-buckets, bounding relative
//     quantization error at 1/Sub (12.5%).
package obs

import "time"

// Phase identifies one stage of the request pipeline.
type Phase uint8

const (
	// PhaseDecode covers reading the request body and decoding the
	// frame (binary) or JSON payload into keys/ranges.
	PhaseDecode Phase = iota
	// PhaseAdmissionWait covers the admission-control gate: with the
	// current CAS semaphore it is accept-or-reject, so the interval is
	// near zero, but a queueing admission policy would surface here.
	PhaseAdmissionWait
	// PhaseShardDispatch covers grouping keys/ranges by destination
	// shard (counting sort) before any probing happens.
	PhaseShardDispatch
	// PhaseProbe covers filter probe/insert compute across shards,
	// including goroutine fan-out when the batch is large enough.
	PhaseProbe
	// PhaseWALAppend covers encoding the WAL record and waiting for the
	// group-commit writer to stage it (queue wait + write), excluding
	// the fsync portion which is reattributed to PhaseWALFsync.
	PhaseWALAppend
	// PhaseWALFsync is the portion of the WAL append wait spent in
	// fsync, as measured by the WAL writer for the batch the record
	// rode in. It is carved out of PhaseWALAppend via Trace.Shift.
	PhaseWALFsync
	// PhaseEncode covers encoding and writing the response.
	PhaseEncode

	// NumPhases is the number of traced phases.
	NumPhases = int(PhaseEncode) + 1
)

var phaseNames = [NumPhases]string{
	"decode",
	"admission-wait",
	"shard-dispatch",
	"probe",
	"wal-append",
	"wal-fsync",
	"encode",
}

// String returns the stable label used on /metrics and in logs.
func (p Phase) String() string {
	if int(p) < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// Trace records per-phase wall time for one request. The zero value is
// disarmed: every method is a no-op until Start is called, which lets a
// Trace live inside pooled scratch that is also used by non-traced
// callers. Trace is a value type with no pointers, so embedding it in a
// pooled struct adds no allocation and no GC pressure.
type Trace struct {
	armed bool
	open  bool
	cur   Phase
	start time.Time
	mark  time.Time
	ns    [NumPhases]int64
}

// Start resets and arms the trace. Phase times from a previous use are
// cleared.
func (t *Trace) Start() {
	*t = Trace{armed: true}
	t.start = time.Now()
	t.mark = t.start
}

// Enter closes the currently open phase (if any), attributing the
// elapsed interval to it, and opens phase p. No-op when disarmed.
func (t *Trace) Enter(p Phase) {
	if !t.armed {
		return
	}
	now := time.Now()
	if t.open {
		t.ns[t.cur] += now.Sub(t.mark).Nanoseconds()
	}
	t.cur = p
	t.open = true
	t.mark = now
}

// Leave closes the currently open phase without opening another. Time
// until the next Enter is unattributed. No-op when disarmed or when no
// phase is open.
func (t *Trace) Leave() {
	if !t.armed || !t.open {
		return
	}
	t.ns[t.cur] += time.Since(t.mark).Nanoseconds()
	t.open = false
}

// Shift reattributes up to ns nanoseconds from phase `from` to phase
// `to`, clamping to what `from` has accumulated. It is used to carve the
// fsync portion out of the WAL append wait after the fact: the handler
// observes one opaque append interval, and the WAL writer reports how
// much of it was fsync. The phase in question must be closed (Leave)
// before shifting, or the open interval will not yet be visible here.
func (t *Trace) Shift(from, to Phase, ns int64) {
	if !t.armed || ns <= 0 {
		return
	}
	if ns > t.ns[from] {
		ns = t.ns[from]
	}
	t.ns[from] -= ns
	t.ns[to] += ns
}

// Finish closes the open phase, disarms the trace, and returns the
// total elapsed nanoseconds since Start. The per-phase totals remain
// readable via PhaseNs after Finish. Returns 0 if the trace was never
// armed.
func (t *Trace) Finish() int64 {
	if !t.armed {
		return 0
	}
	now := time.Now()
	if t.open {
		t.ns[t.cur] += now.Sub(t.mark).Nanoseconds()
		t.open = false
	}
	t.armed = false
	return now.Sub(t.start).Nanoseconds()
}

// Disarm turns the trace off without recording anything. Pools call
// this before reusing scratch so a trace abandoned by an error path
// cannot keep accumulating into stale state.
func (t *Trace) Disarm() { t.armed = false; t.open = false }

// Armed reports whether Start has been called without a matching
// Finish/Disarm.
func (t *Trace) Armed() bool { return t.armed }

// PhaseNs returns the nanoseconds attributed to phase p so far.
func (t *Trace) PhaseNs(p Phase) int64 { return t.ns[p] }
