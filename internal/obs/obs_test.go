package obs

import (
	"sync"
	"testing"
	"time"
)

// TestBucketLayout pins the histogram geometry: bucket upper bounds are
// strictly increasing, and Bucket routes a value into the bucket whose
// [lower, upper) interval contains it.
func TestBucketLayout(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < NumBuckets; i++ {
		up := BucketUpper(i)
		if up <= prev && i < NumBuckets-1 {
			t.Fatalf("bucket %d upper %d not above previous %d", i, up, prev)
		}
		prev = up
	}
	if got := BucketUpper(NumBuckets - 1); got != 1<<MaxExp {
		t.Fatalf("overflow bucket upper = %d, want 2^%d", got, MaxExp)
	}
	for _, v := range []int64{
		0, 1, 1<<MinExp - 1, 1 << MinExp, 1<<MinExp + 1,
		5_000, 77_000, 1_000_000, 42_000_000, 999_999_999,
		1<<MaxExp - 1, 1 << MaxExp, 1 << 62,
	} {
		i := Bucket(v)
		if i < 0 || i >= NumBuckets {
			t.Fatalf("Bucket(%d) = %d out of range", v, i)
		}
		var lower int64
		if i > 0 {
			lower = BucketUpper(i - 1)
		}
		if i == NumBuckets-1 {
			// Overflow bucket is [2^MaxExp, ∞): only the lower bound applies.
			if v < lower {
				t.Fatalf("Bucket(%d) = overflow but value below 2^%d", v, MaxExp)
			}
			continue
		}
		if v < lower || v >= BucketUpper(i) {
			t.Fatalf("Bucket(%d) = %d, bounds [%d, %d)", v, i, lower, BucketUpper(i))
		}
	}
}

// TestHistQuantiles feeds a known distribution and checks the reported
// quantiles against the exact values, within the documented 1/Sub
// relative quantization error.
func TestHistQuantiles(t *testing.T) {
	var h Hist
	// 1000 observations: 900 at 100µs, 90 at 1ms, 9 at 10ms, 1 at 100ms.
	for i := 0; i < 900; i++ {
		h.Observe(100_000)
	}
	for i := 0; i < 90; i++ {
		h.Observe(1_000_000)
	}
	for i := 0; i < 9; i++ {
		h.Observe(10_000_000)
	}
	h.Observe(100_000_000)

	snap := h.Read()
	if snap.Count != 1000 {
		t.Fatalf("count = %d, want 1000", snap.Count)
	}
	check := func(q float64, want int64) {
		t.Helper()
		got := snap.Quantile(q)
		// The reported value is the bucket's upper bound: at least the
		// true value, at most 1+1/Sub of it.
		if got < want || float64(got) > float64(want)*(1+1.0/Sub)*1.0001 {
			t.Fatalf("q%.3f = %d, want within [%d, %g]", q, got, want, float64(want)*(1+1.0/Sub))
		}
	}
	check(0.50, 100_000)
	check(0.90, 100_000)
	check(0.99, 1_000_000)
	check(0.999, 10_000_000)
	check(1.0, 100_000_000)

	var empty Hist
	es := empty.Read()
	if got := es.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram q99 = %d, want 0", got)
	}
}

// TestHistConcurrent hammers one histogram from parallel recorders while
// a scraper goroutine snapshots and walks quantiles concurrently — the
// /metrics-scrape-during-traffic shape, checked for races under -race
// and for lost updates by the final count.
func TestHistConcurrent(t *testing.T) {
	var h Hist
	const writers, perWriter = 8, 5_000
	done := make(chan struct{})
	var scrapes int
	go func() {
		defer close(done)
		for {
			select {
			case <-done:
				return
			default:
			}
			snap := h.Read()
			_ = snap.Quantile(0.99)
			scrapes++
			if snap.Count > writers*perWriter {
				t.Errorf("snapshot count %d exceeds total observations %d", snap.Count, writers*perWriter)
				return
			}
			if scrapes > 1_000_000 {
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(int64((w*perWriter + i) % 2_000_000))
			}
		}(w)
	}
	wg.Wait()
	done <- struct{}{}
	<-done
	if got := h.Read().Count; got != writers*perWriter {
		t.Fatalf("final count = %d, want %d (lost updates)", got, writers*perWriter)
	}
}

// TestTracePhaseAttribution drives a trace through the full phase
// sequence with real sleeps and checks every interval lands on the
// right phase, that phases partition the total, and that the slept
// phase dominates.
func TestTracePhaseAttribution(t *testing.T) {
	var tr Trace
	tr.Start()
	tr.Enter(PhaseDecode)
	tr.Enter(PhaseProbe)
	time.Sleep(20 * time.Millisecond)
	tr.Enter(PhaseEncode)
	total := tr.Finish()

	if tr.PhaseNs(PhaseProbe) < (10 * time.Millisecond).Nanoseconds() {
		t.Fatalf("probe phase %dns, slept 20ms", tr.PhaseNs(PhaseProbe))
	}
	var sum int64
	for p := 0; p < NumPhases; p++ {
		sum += tr.PhaseNs(Phase(p))
	}
	if sum > total {
		t.Fatalf("phase sum %d exceeds total %d", sum, total)
	}
	// Phases chain seamlessly (every Enter closes the previous phase at
	// the same instant it opens the next), so unattributed time is only
	// the Start→first-Enter gap: negligible next to a 20ms sleep.
	if unattr := total - sum; unattr > (5 * time.Millisecond).Nanoseconds() {
		t.Fatalf("unattributed time %dns too large (total %d, sum %d)", unattr, total, sum)
	}
	if tr.Armed() {
		t.Fatal("trace still armed after Finish")
	}
}

// TestTraceShift pins the fsync carve-out semantics: Shift moves time
// between phases, clamps to what the source phase holds, and requires
// the source phase to be closed first.
func TestTraceShift(t *testing.T) {
	var tr Trace
	tr.Start()
	tr.Enter(PhaseWALAppend)
	time.Sleep(2 * time.Millisecond)
	tr.Leave()
	app := tr.PhaseNs(PhaseWALAppend)
	if app <= 0 {
		t.Fatal("Leave did not close the open phase")
	}
	tr.Shift(PhaseWALAppend, PhaseWALFsync, app/2)
	if got := tr.PhaseNs(PhaseWALFsync); got != app/2 {
		t.Fatalf("fsync = %d, want %d", got, app/2)
	}
	// Clamped: shifting more than remains moves only the remainder.
	tr.Shift(PhaseWALAppend, PhaseWALFsync, 1<<62)
	if got := tr.PhaseNs(PhaseWALAppend); got != 0 {
		t.Fatalf("append = %d after clamped shift, want 0", got)
	}
	if got := tr.PhaseNs(PhaseWALFsync); got != app {
		t.Fatalf("fsync = %d, want full %d", got, app)
	}
	tr.Finish()
}

// TestTraceDisarmed pins that the zero value and a disarmed trace are
// inert: pooled scratch reused by non-traced callers must not
// accumulate anything.
func TestTraceDisarmed(t *testing.T) {
	var tr Trace
	tr.Enter(PhaseProbe)
	tr.Leave()
	if tr.Finish() != 0 {
		t.Fatal("zero-value trace recorded time")
	}
	tr.Start()
	tr.Enter(PhaseProbe)
	tr.Disarm()
	tr.Enter(PhaseEncode)
	if tr.Finish() != 0 {
		t.Fatal("disarmed trace recorded time")
	}
	for p := 0; p < NumPhases; p++ {
		// Start reset the array; Disarm froze it with at most the
		// pre-Disarm probe interval — but Enter-after-Disarm must not add.
		if p != int(PhaseProbe) && tr.PhaseNs(Phase(p)) != 0 {
			t.Fatalf("phase %s accumulated %dns while disarmed", Phase(p), tr.PhaseNs(Phase(p)))
		}
	}
}

// TestPhaseNames pins the label set used on /metrics.
func TestPhaseNames(t *testing.T) {
	want := map[Phase]string{
		PhaseDecode:        "decode",
		PhaseAdmissionWait: "admission-wait",
		PhaseShardDispatch: "shard-dispatch",
		PhaseProbe:         "probe",
		PhaseWALAppend:     "wal-append",
		PhaseWALFsync:      "wal-fsync",
		PhaseEncode:        "encode",
	}
	if len(want) != NumPhases {
		t.Fatalf("test covers %d phases, NumPhases = %d", len(want), NumPhases)
	}
	for p, name := range want {
		if p.String() != name {
			t.Fatalf("phase %d = %q, want %q", p, p.String(), name)
		}
	}
	if Phase(200).String() != "unknown" {
		t.Fatal("out-of-range phase should stringify as unknown")
	}
}
