package faults

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedIsNil(t *testing.T) {
	t.Cleanup(Reset)
	if err := Do("never.armed"); err != nil {
		t.Fatalf("disarmed failpoint returned %v", err)
	}
}

func TestArmedCountsDownAndDisarms(t *testing.T) {
	t.Cleanup(Reset)
	boom := errors.New("boom")
	Arm("x", Action{Err: boom, Remaining: 2})
	for i := 0; i < 2; i++ {
		if err := Do("x"); !errors.Is(err, boom) {
			t.Fatalf("hit %d: got %v, want boom", i, err)
		}
	}
	if err := Do("x"); err != nil {
		t.Fatalf("exhausted failpoint still fires: %v", err)
	}
	if armed.Load() != 0 {
		t.Fatalf("armed count %d after self-disarm, want 0", armed.Load())
	}
}

func TestUnlimitedAndDisarm(t *testing.T) {
	t.Cleanup(Reset)
	boom := errors.New("boom")
	Arm("y", Action{Err: boom})
	for i := 0; i < 5; i++ {
		if err := Do("y"); !errors.Is(err, boom) {
			t.Fatalf("unlimited failpoint stopped firing at hit %d: %v", i, err)
		}
	}
	Disarm("y")
	if err := Do("y"); err != nil {
		t.Fatalf("disarmed failpoint fired: %v", err)
	}
}

func TestHookOverridesErr(t *testing.T) {
	t.Cleanup(Reset)
	hookErr := errors.New("from hook")
	var hits int
	Arm("z", Action{Err: errors.New("static"), Hook: func() error {
		hits++
		return hookErr
	}})
	if err := Do("z"); !errors.Is(err, hookErr) {
		t.Fatalf("got %v, want hook error", err)
	}
	if hits != 1 {
		t.Fatalf("hook ran %d times, want 1", hits)
	}
	// A hook returning nil falls back to the static error.
	static := errors.New("static")
	Arm("z", Action{Err: static, Hook: func() error { return nil }})
	if err := Do("z"); !errors.Is(err, static) {
		t.Fatalf("got %v, want static error", err)
	}
}

func TestDelay(t *testing.T) {
	t.Cleanup(Reset)
	Arm("slow", Action{Delay: 30 * time.Millisecond})
	t0 := time.Now()
	if err := Do("slow"); err != nil {
		t.Fatalf("delay-only failpoint returned %v", err)
	}
	if d := time.Since(t0); d < 25*time.Millisecond {
		t.Fatalf("delay not applied: %v", d)
	}
}

func TestRearmResetsRemaining(t *testing.T) {
	t.Cleanup(Reset)
	boom := errors.New("boom")
	Arm("r", Action{Err: boom, Remaining: 1})
	Arm("r", Action{Err: boom, Remaining: 3})
	n := 0
	for i := 0; i < 5; i++ {
		if Do("r") != nil {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("re-armed failpoint fired %d times, want 3", n)
	}
}
