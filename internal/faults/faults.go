// Package faults is a dependency-free failpoint registry for fault-injection
// testing. Production code threads named hooks through its critical sections
// (`faults.Do("wal.fsync")`); tests arm them with deterministic behaviors —
// return an error N times, delay, or run an arbitrary hook — and the hammer
// drives the system through the failure. When nothing is armed the cost of a
// hook is one atomic load, so the hooks stay compiled into release builds.
//
// The registry is global: failpoints are addressed by name, not by instance,
// which keeps the arming side (tests, scripts) decoupled from the code under
// test. Tests that arm failpoints must Reset (or Disarm) on cleanup and must
// not run in parallel with other fault-armed tests against shared names.
package faults

import (
	"sync"
	"sync/atomic"
	"time"
)

// Action describes what an armed failpoint does when hit.
type Action struct {
	// Err is returned from Do. A nil Err with a nonzero Delay models a
	// stall that eventually succeeds.
	Err error
	// Delay is slept before returning (a slow disk, a laggy network).
	Delay time.Duration
	// Remaining caps how many hits trigger the action; each hit counts it
	// down and the failpoint disarms itself at zero. Zero or negative
	// means unlimited.
	Remaining int64
	// Hook, if set, runs on each hit after the delay; a non-nil return
	// overrides Err. Use it for side effects (partial writes, panics in
	// crash tests) that a static error cannot express.
	Hook func() error
}

var (
	mu     sync.Mutex
	points map[string]*Action
	armed  atomic.Int64 // number of armed failpoints; fast-path gate
)

// Arm installs (or replaces) the action for a named failpoint.
func Arm(name string, a Action) {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]*Action)
	}
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	cp := a
	points[name] = &cp
}

// Disarm removes a failpoint. Disarming an unarmed name is a no-op.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
}

// Reset disarms every failpoint. Tests call it in cleanup.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	if n := len(points); n > 0 {
		points = nil
		armed.Add(-int64(n))
	}
}

// Do triggers the named failpoint. Disarmed (the overwhelmingly common
// case) it is a single atomic load returning nil.
func Do(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	p, ok := points[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	act := *p // copy so the hit runs outside the lock
	if p.Remaining > 0 {
		p.Remaining--
		if p.Remaining == 0 {
			delete(points, name)
			armed.Add(-1)
		}
	}
	mu.Unlock()

	if act.Delay > 0 {
		time.Sleep(act.Delay)
	}
	if act.Hook != nil {
		if err := act.Hook(); err != nil {
			return err
		}
	}
	return act.Err
}
