package succinct

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// reference is a naive bit array for cross-checking.
type reference struct{ bits []bool }

func buildRandom(seed int64, n int, density float64) (*BitVector, *reference) {
	rng := rand.New(rand.NewSource(seed))
	var b Builder
	ref := &reference{bits: make([]bool, n)}
	for i := 0; i < n; i++ {
		bit := rng.Float64() < density
		ref.bits[i] = bit
		b.Append(bit)
	}
	return b.Build(), ref
}

func (r *reference) rank1(i int) int {
	n := 0
	for j := 0; j < i; j++ {
		if r.bits[j] {
			n++
		}
	}
	return n
}

func (r *reference) select1(j int) int {
	seen := 0
	for i, b := range r.bits {
		if b {
			seen++
			if seen == j {
				return i
			}
		}
	}
	return -1
}

func TestRankAgainstNaive(t *testing.T) {
	for _, density := range []float64{0.01, 0.5, 0.99} {
		bv, ref := buildRandom(1, 3000, density)
		for i := 0; i <= 3000; i += 7 {
			if got, want := bv.Rank1(i), ref.rank1(i); got != want {
				t.Fatalf("density %v: Rank1(%d) = %d, want %d", density, i, got, want)
			}
			if got, want := bv.Rank0(i), i-ref.rank1(i); got != want {
				t.Fatalf("density %v: Rank0(%d) = %d, want %d", density, i, got, want)
			}
		}
	}
}

func TestSelectAgainstNaive(t *testing.T) {
	for _, density := range []float64{0.02, 0.5, 0.98} {
		bv, ref := buildRandom(2, 4000, density)
		for j := 1; j <= bv.Ones(); j += 3 {
			if got, want := bv.Select1(j), ref.select1(j); got != want {
				t.Fatalf("density %v: Select1(%d) = %d, want %d", density, j, got, want)
			}
		}
		if bv.Select1(0) != -1 || bv.Select1(bv.Ones()+1) != -1 {
			t.Fatal("out-of-range select must return -1")
		}
	}
}

func TestRankSelectInverse(t *testing.T) {
	bv, _ := buildRandom(3, 10000, 0.3)
	prop := func(jj uint16) bool {
		j := int(jj)%bv.Ones() + 1
		pos := bv.Select1(j)
		return pos >= 0 && bv.Get(pos) && bv.Rank1(pos) == j-1 && bv.Rank1(pos+1) == j
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestNextPrevSet(t *testing.T) {
	var b Builder
	//           0      1     2      3     4      5     6
	for _, bit := range []bool{false, true, false, true, false, false, true} {
		b.Append(bit)
	}
	bv := b.Build()
	cases := []struct{ from, next, prev int }{
		{0, 1, -1}, {1, 1, 1}, {2, 3, 1}, {3, 3, 3}, {4, 6, 3}, {6, 6, 6},
	}
	for _, c := range cases {
		if got := bv.NextSet(c.from); got != c.next {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.next)
		}
		if got := bv.PrevSet(c.from); got != c.prev {
			t.Errorf("PrevSet(%d) = %d, want %d", c.from, got, c.prev)
		}
	}
	if bv.NextSet(7) != -1 {
		t.Error("NextSet past end must be -1")
	}
	if bv.PrevSet(100) != 6 {
		t.Error("PrevSet clamps to length")
	}
}

func TestNextPrevSetAcrossWords(t *testing.T) {
	var b Builder
	for i := 0; i < 300; i++ {
		b.Append(i == 70 || i == 200)
	}
	bv := b.Build()
	if got := bv.NextSet(0); got != 70 {
		t.Errorf("NextSet(0) = %d, want 70", got)
	}
	if got := bv.NextSet(71); got != 200 {
		t.Errorf("NextSet(71) = %d, want 200", got)
	}
	if got := bv.PrevSet(199); got != 70 {
		t.Errorf("PrevSet(199) = %d, want 70", got)
	}
	if got := bv.PrevSet(299); got != 200 {
		t.Errorf("PrevSet(299) = %d, want 200", got)
	}
}

func TestAppendN(t *testing.T) {
	var b Builder
	b.AppendN(0b1011, 4)
	bv := b.Build()
	want := []bool{true, true, false, true}
	for i, w := range want {
		if bv.Get(i) != w {
			t.Errorf("bit %d = %v, want %v", i, bv.Get(i), w)
		}
	}
	if bv.Len() != 4 || bv.Ones() != 3 {
		t.Errorf("len/ones = %d/%d, want 4/3", bv.Len(), bv.Ones())
	}
}

func TestEmpty(t *testing.T) {
	var b Builder
	bv := b.Build()
	if bv.Len() != 0 || bv.Ones() != 0 || bv.Rank1(0) != 0 {
		t.Error("empty vector broken")
	}
	if bv.NextSet(0) != -1 || bv.Select1(1) != -1 {
		t.Error("empty vector queries must fail gracefully")
	}
}
