// Package succinct provides the rank/select bit vectors underlying the
// SuRF baseline's LOUDS-Dense/Sparse encodings (Zhang et al., SIGMOD 2018):
// constant-time rank via per-block popcount prefix sums and near-constant
// select via sampled positions.
package succinct

import "math/bits"

// Builder accumulates bits before freezing them into a BitVector.
type Builder struct {
	words []uint64
	n     int
}

// Append adds one bit.
func (b *Builder) Append(bit bool) {
	if b.n%64 == 0 {
		b.words = append(b.words, 0)
	}
	if bit {
		b.words[b.n/64] |= 1 << (b.n % 64)
	}
	b.n++
}

// AppendN adds the low n bits of v, LSB first.
func (b *Builder) AppendN(v uint64, n int) {
	for i := 0; i < n; i++ {
		b.Append(v&(1<<i) != 0)
	}
}

// Len returns the number of bits appended so far.
func (b *Builder) Len() int { return b.n }

// Build freezes the builder into a BitVector with rank/select support.
func (b *Builder) Build() *BitVector {
	return NewBitVector(b.words, b.n)
}

const selectSample = 256

// BitVector is an immutable bit array with O(1) Rank1 and near-O(1)
// Select1.
type BitVector struct {
	words []uint64
	n     int
	// rank[i] = number of set bits in words[0:i].
	rank []uint32
	// selectHints[j] = word index containing the (j·selectSample+1)-th set
	// bit.
	selectHints []uint32
	ones        int
}

// NewBitVector builds the acceleration structures over the given words
// (n = logical bit length; trailing bits of the last word must be zero).
func NewBitVector(words []uint64, n int) *BitVector {
	need := (n + 63) / 64
	w := make([]uint64, need)
	copy(w, words)
	bv := &BitVector{words: w, n: n}
	bv.rank = make([]uint32, len(w)+1)
	total := 0
	for i, word := range w {
		bv.rank[i] = uint32(total)
		total += bits.OnesCount64(word)
	}
	bv.rank[len(w)] = uint32(total)
	bv.ones = total
	for j := 0; j*selectSample < total; j++ {
		target := j*selectSample + 1
		// Binary search the rank array for the word containing the
		// target-th set bit.
		lo, hi := 0, len(w)
		for lo < hi {
			mid := (lo + hi) / 2
			if int(bv.rank[mid+1]) >= target {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		bv.selectHints = append(bv.selectHints, uint32(lo))
	}
	return bv
}

// Len returns the bit length.
func (v *BitVector) Len() int { return v.n }

// Ones returns the total number of set bits.
func (v *BitVector) Ones() int { return v.ones }

// Get returns bit i.
func (v *BitVector) Get(i int) bool {
	return v.words[i>>6]&(1<<(i&63)) != 0
}

// Rank1 returns the number of set bits in [0, i) — i may equal Len().
func (v *BitVector) Rank1(i int) int {
	w := i >> 6
	r := int(v.rank[w])
	if off := i & 63; off != 0 {
		r += bits.OnesCount64(v.words[w] & (1<<off - 1))
	}
	return r
}

// Rank0 returns the number of clear bits in [0, i).
func (v *BitVector) Rank0(i int) int { return i - v.Rank1(i) }

// Select1 returns the position of the j-th set bit (1-based); -1 when j is
// out of range.
func (v *BitVector) Select1(j int) int {
	if j < 1 || j > v.ones {
		return -1
	}
	w := int(v.selectHints[(j-1)/selectSample])
	// Walk forward from the hint.
	for int(v.rank[w+1]) < j {
		w++
	}
	need := j - int(v.rank[w])
	word := v.words[w]
	for i := 1; i < need; i++ {
		word &= word - 1 // clear lowest set bit
	}
	return w<<6 + bits.TrailingZeros64(word)
}

// NextSet returns the position of the first set bit at or after i, or -1.
func (v *BitVector) NextSet(i int) int {
	if i >= v.n {
		return -1
	}
	w := i >> 6
	word := v.words[w] &^ (1<<(i&63) - 1)
	for {
		if word != 0 {
			pos := w<<6 + bits.TrailingZeros64(word)
			if pos >= v.n {
				return -1
			}
			return pos
		}
		w++
		if w >= len(v.words) {
			return -1
		}
		word = v.words[w]
	}
}

// PrevSet returns the position of the last set bit at or before i, or -1.
func (v *BitVector) PrevSet(i int) int {
	if i >= v.n {
		i = v.n - 1
	}
	if i < 0 {
		return -1
	}
	w := i >> 6
	word := v.words[w] & (^uint64(0) >> (63 - i&63))
	for {
		if word != 0 {
			return w<<6 + 63 - bits.LeadingZeros64(word)
		}
		w--
		if w < 0 {
			return -1
		}
		word = v.words[w]
	}
}

// SizeBits returns the memory footprint including rank/select overhead.
func (v *BitVector) SizeBits() uint64 {
	return uint64(len(v.words))*64 + uint64(len(v.rank))*32 + uint64(len(v.selectHints))*32
}

// Bits extracts w (≤ 64) bits starting at position pos, LSB-first, matching
// Builder.AppendN. Used for the packed fixed-width suffix arrays of SuRF.
func (v *BitVector) Bits(pos, w int) uint64 {
	if w == 0 {
		return 0
	}
	wi, off := pos>>6, pos&63
	val := v.words[wi] >> off
	if off+w > 64 && wi+1 < len(v.words) {
		val |= v.words[wi+1] << (64 - off)
	}
	if w < 64 {
		val &= 1<<w - 1
	}
	return val
}
