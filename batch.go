package bloomrf

// Batch variants of the filter's hot paths. Each is equivalent to the
// corresponding loop of single-key calls — identical answers, identical
// no-false-negative guarantee. InsertBatch and MayContainBatch run
// layer-major with per-layer setup hoisted out of the key loop and the
// hash-to-word reduction strength-reduced, which roughly doubles
// point-probe throughput on large batches (see BenchmarkBatchPointLookup);
// MayContainRangeBatch is a convenience wrapper over MayContainRange with
// no per-range speedup. None of the batch calls allocate, and all are safe
// for concurrent use, like their single-key counterparts.

// InsertBatch adds every key in keys. Equivalent to calling Insert on each
// key, but faster for large batches.
func (f *Filter) InsertBatch(keys []uint64) { f.inner.InsertBatch(keys) }

// MayContainBatch tests every key in keys and stores the verdicts in out,
// which must have the same length as keys (it panics otherwise). out[j] is
// exactly MayContain(keys[j]): false is definitive, true is correct with
// probability 1 − FPR.
func (f *Filter) MayContainBatch(keys []uint64, out []bool) {
	f.inner.MayContainBatch(keys, out)
}

// MayContainRangeBatch tests every [lo, hi] pair in ranges (inclusive,
// either order) and stores the verdicts in out, which must have the same
// length as ranges (it panics otherwise). out[j] is exactly
// MayContainRange(ranges[j][0], ranges[j][1]). Range decomposition is
// already O(k) per query and does not batch further; this variant exists
// for call-site symmetry with MayContainBatch, not for speed.
func (f *Filter) MayContainRangeBatch(ranges [][2]uint64, out []bool) {
	f.inner.MayContainRangeBatch(ranges, out)
}

// Stats summarizes filter occupancy.
type Stats struct {
	// SizeBits is the total memory footprint in bits.
	SizeBits uint64
	// SetBits is the number of set bits across probabilistic segments.
	SetBits uint64
	// K is the number of probabilistic layers.
	K int
	// FillRatios holds the fraction of set bits per probabilistic segment.
	FillRatios []float64
}

// Stats returns occupancy statistics, for monitoring and capacity planning.
func (f *Filter) Stats() Stats {
	st := f.inner.Stats()
	return Stats{SizeBits: st.SizeBits, SetBits: st.SetBits, K: st.K, FillRatios: st.FillRatios}
}
