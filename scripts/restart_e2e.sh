#!/usr/bin/env bash
# Restart end-to-end check for bloomrfd's durability subsystem:
# start the daemon with a data dir, create a sharded filter, load keys,
# snapshot over HTTP, kill the process without ceremony (SIGKILL), restart
# on the same data dir, and require bit-identical responses for the same
# point and range queries. A second phase then loads keys WITHOUT any
# snapshot and SIGKILLs again: those keys exist only in the write-ahead
# log (-wal-sync=always, so the insert acks imply fsync), proving the
# snapshot+replay recovery path end to end. A third phase splits a
# range-partitioned filter's hottest span live and SIGKILLs again: the
# journaled split record must replay so the grown topology and every key
# survive the crash.
# Run from the repository root: ./scripts/restart_e2e.sh
set -euo pipefail

ADDR="127.0.0.1:18077"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
trap 'kill -9 $PID 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/bloomrfd" ./cmd/bloomrfd

start_server() {
  "$WORK/bloomrfd" -addr "$ADDR" -data-dir "$WORK/data" -snapshot-interval 0 \
      -wal-sync always >>"$WORK/server.log" 2>&1 &
  PID=$!
  for _ in $(seq 1 100); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "server did not become healthy; log:" >&2
  cat "$WORK/server.log" >&2
  exit 1
}

# Deterministic query mix: the first 64 loaded keys, 16 absent keys, and 16
# ranges straddling loaded keys.
point_queries() {
  curl -sf -XPOST "$BASE/v1/filters/users/query" \
      -d "{\"keys\":[$(seq -s, 1000 1063)]}"
  curl -sf -XPOST "$BASE/v1/filters/users/query" \
      -d "{\"keys\":[$(seq -s, 900000001 900000016)]}"
}
range_queries() {
  local body='{"ranges":['
  for i in $(seq 0 15); do
    lo=$((1000 + i * 100))
    body+="{\"lo\":$lo,\"hi\":$((lo + 50))},"
  done
  body="${body%,}]}"
  curl -sf -XPOST "$BASE/v1/filters/users/query-range" -d "$body"
}

start_server
echo "== create + load =="
curl -sf -XPOST "$BASE/v1/filters" \
    -d '{"name":"users","expected_keys":100000,"bits_per_key":16,"shards":4}' >/dev/null
curl -sf -XPOST "$BASE/v1/filters/users/insert" \
    -d "{\"keys\":[$(seq -s, 1000 3000)]}" >/dev/null

echo "== record answers, snapshot, SIGKILL =="
point_queries  > "$WORK/before.points"
range_queries  > "$WORK/before.ranges"
curl -sf -XPOST "$BASE/v1/filters/users/snapshot" -d '' | tee "$WORK/snapshot.json"
echo
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

echo "== restart + compare =="
start_server
point_queries  > "$WORK/after.points"
range_queries  > "$WORK/after.ranges"
diff "$WORK/before.points" "$WORK/after.points"
diff "$WORK/before.ranges" "$WORK/after.ranges"

# The restored filter must also still hold every loaded key (a stronger
# check than response equality alone: catches "both empty" degenerations).
head -c 200 "$WORK/after.points" | grep -q '"results":\[true,true,true,true' \
  || { echo "restored filter lost loaded keys"; exit 1; }

curl -sf "$BASE/metrics" | grep -E 'bloomrfd_filter_snapshot_seq\{filter="users"\}' \
  || { echo "metrics missing snapshot gauge"; exit 1; }

echo "== phase 2: WAL-only inserts survive SIGKILL without any snapshot =="
# 2000 keys in a disjoint range, never snapshotted: recovery must get them
# from snapshot (phase 1 state) + WAL tail replay.
curl -sf -XPOST "$BASE/v1/filters/users/insert" \
    -d "{\"keys\":[$(seq -s, 500000 502000)]}" >/dev/null
wal_points() {
  curl -sf -XPOST "$BASE/v1/filters/users/query" \
      -d "{\"keys\":[$(seq -s, 500000 500063)]}"
}
wal_points > "$WORK/before.walpoints"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

start_server
wal_points > "$WORK/after.walpoints"
diff "$WORK/before.walpoints" "$WORK/after.walpoints"
head -c 200 "$WORK/after.walpoints" | grep -q '"results":\[true,true,true,true' \
  || { echo "WAL replay lost un-snapshotted keys"; exit 1; }
# Phase 1 answers must still hold after the second recovery.
point_queries > "$WORK/after2.points"
diff "$WORK/before.points" "$WORK/after2.points"
# (plain grep, not -q: with pipefail, -q's early exit would SIGPIPE curl)
curl -sf "$BASE/metrics" | grep 'bloomrfd_wal_end_pos' >/dev/null \
  || { echo "metrics missing WAL gauges"; exit 1; }
grep -q "WAL replay" "$WORK/server.log" \
  || { echo "server log missing WAL replay line"; exit 1; }

echo "== phase 3: a live span split survives SIGKILL =="
# A range-partitioned filter with all its keys clustered in the first span:
# the split should land there, and the journaled recSplit record must
# replay on restart so the grown topology comes back.
curl -sf -XPOST "$BASE/v1/filters" \
    -d '{"name":"spans","expected_keys":100000,"shards":2,"partitioning":"range"}' >/dev/null
curl -sf -XPOST "$BASE/v1/filters/spans/insert" \
    -d "{\"keys\":[$(seq -s, 7000 9000)]}" >/dev/null
span_points() {
  curl -sf -XPOST "$BASE/v1/filters/spans/query" \
      -d "{\"keys\":[$(seq -s, 7000 7063)]}"
}
span_points > "$WORK/before.spanpoints"
curl -sf -XPOST "$BASE/v1/filters/spans/split" -d '' | tee "$WORK/split.json"
echo
grep -q '"split_key"' "$WORK/split.json" || { echo "split response missing split_key"; exit 1; }
shards_now() {
  curl -sf "$BASE/v1/filters/spans" | grep -o '"shards":[0-9]*' | head -1 | cut -d: -f2
}
S_BEFORE="$(shards_now)"
[ "$S_BEFORE" -eq 3 ] || { echo "split did not grow the filter: $S_BEFORE shards"; exit 1; }
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

start_server
S_AFTER="$(shards_now)"
[ "$S_AFTER" -eq 3 ] || { echo "journaled split lost across SIGKILL: $S_AFTER shards"; exit 1; }
span_points > "$WORK/after.spanpoints"
diff "$WORK/before.spanpoints" "$WORK/after.spanpoints"
head -c 200 "$WORK/after.spanpoints" | grep -q '"results":\[true,true,true,true' \
  || { echo "split recovery lost keys"; exit 1; }
curl -sf "$BASE/metrics" | grep -E 'bloomrfd_filter_splits_total\{filter="spans"\} 1' \
  || { echo "metrics missing split counter after recovery"; exit 1; }

kill "$PID"
wait "$PID" 2>/dev/null || true
echo "restart e2e: OK (snapshot restore, WAL tail replay, and a journaled span split all survive SIGKILL)"
