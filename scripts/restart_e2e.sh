#!/usr/bin/env bash
# Restart end-to-end check for bloomrfd's snapshot/restore subsystem:
# start the daemon with a data dir, create a sharded filter, load keys,
# snapshot over HTTP, kill the process without ceremony (SIGKILL, so only
# the explicit snapshot can save us), restart on the same data dir, and
# require bit-identical responses for the same point and range queries.
# Run from the repository root: ./scripts/restart_e2e.sh
set -euo pipefail

ADDR="127.0.0.1:18077"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
trap 'kill -9 $PID 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/bloomrfd" ./cmd/bloomrfd

start_server() {
  "$WORK/bloomrfd" -addr "$ADDR" -data-dir "$WORK/data" -snapshot-interval 0 \
      >>"$WORK/server.log" 2>&1 &
  PID=$!
  for _ in $(seq 1 100); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "server did not become healthy; log:" >&2
  cat "$WORK/server.log" >&2
  exit 1
}

# Deterministic query mix: the first 64 loaded keys, 16 absent keys, and 16
# ranges straddling loaded keys.
point_queries() {
  curl -sf -XPOST "$BASE/v1/filters/users/query" \
      -d "{\"keys\":[$(seq -s, 1000 1063)]}"
  curl -sf -XPOST "$BASE/v1/filters/users/query" \
      -d "{\"keys\":[$(seq -s, 900000001 900000016)]}"
}
range_queries() {
  local body='{"ranges":['
  for i in $(seq 0 15); do
    lo=$((1000 + i * 100))
    body+="{\"lo\":$lo,\"hi\":$((lo + 50))},"
  done
  body="${body%,}]}"
  curl -sf -XPOST "$BASE/v1/filters/users/query-range" -d "$body"
}

start_server
echo "== create + load =="
curl -sf -XPOST "$BASE/v1/filters" \
    -d '{"name":"users","expected_keys":100000,"bits_per_key":16,"shards":4}' >/dev/null
curl -sf -XPOST "$BASE/v1/filters/users/insert" \
    -d "{\"keys\":[$(seq -s, 1000 3000)]}" >/dev/null

echo "== record answers, snapshot, SIGKILL =="
point_queries  > "$WORK/before.points"
range_queries  > "$WORK/before.ranges"
curl -sf -XPOST "$BASE/v1/filters/users/snapshot" -d '' | tee "$WORK/snapshot.json"
echo
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

echo "== restart + compare =="
start_server
point_queries  > "$WORK/after.points"
range_queries  > "$WORK/after.ranges"
diff "$WORK/before.points" "$WORK/after.points"
diff "$WORK/before.ranges" "$WORK/after.ranges"

# The restored filter must also still hold every loaded key (a stronger
# check than response equality alone: catches "both empty" degenerations).
head -c 200 "$WORK/after.points" | grep -q '"results":\[true,true,true,true' \
  || { echo "restored filter lost loaded keys"; exit 1; }

curl -sf "$BASE/metrics" | grep -E 'bloomrfd_filter_snapshot_seq\{filter="users"\}' \
  || { echo "metrics missing snapshot gauge"; exit 1; }

kill "$PID"
wait "$PID" 2>/dev/null || true
echo "restart e2e: OK (point and range answers bit-identical across restart)"
