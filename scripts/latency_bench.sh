#!/usr/bin/env bash
# Tail-latency harness for bloomrfd: starts a server, seeds a filter, and
# drives the open-loop probe (-probe-target-qps, coordinated-omission-safe;
# see docs/performance.md) at several target rates over both codecs,
# recording client-side percentiles. A second, deliberately tiny server
# (-max-inflight-batches 1) is then saturated to demonstrate admission
# control shedding with 429 + Retry-After. All runs merge into one JSON
# report.
#
# Usage, from the repository root:
#
#   ./scripts/latency_bench.sh                      # writes BENCH_PR9.json
#   QPS_LEVELS="200 2000" DURATION=10s ./scripts/latency_bench.sh
#   ASSERT=1 ./scripts/latency_bench.sh             # CI: fail unless /metrics
#                                                   # shows latency + per-phase
#                                                   # histograms, the saturating
#                                                   # run was shed with ≥1 429,
#                                                   # and it logged ≥1
#                                                   # slow_request line
set -euo pipefail

QPS_LEVELS="${QPS_LEVELS:-200 1000}"
DURATION="${DURATION:-5s}"
BATCH="${BATCH:-1024}"
KEYS="${KEYS:-50000}"
OUT="${OUT:-BENCH_PR9.json}"
ASSERT="${ASSERT:-0}"

ADDR="127.0.0.1:18087";  BASE="http://$ADDR"
ADDR2="127.0.0.1:18088"; BASE2="http://$ADDR2"
WORK="$(mktemp -d)"
trap 'kill -9 $PID $PID2 2>/dev/null || true; rm -rf "$WORK"' EXIT
PID=""; PID2=""

go build -o "$WORK/bloomrfd" ./cmd/bloomrfd

wait_healthy() {
  local base="$1" log="$2"
  for _ in $(seq 1 100); do
    if curl -sf "$base/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "server at $base did not become healthy; log:" >&2
  cat "$log" >&2
  exit 1
}

echo "== start server (ample admission budget) =="
"$WORK/bloomrfd" -addr "$ADDR" -max-inflight-batches 64 \
    >>"$WORK/server.log" 2>&1 &
PID=$!
wait_healthy "$BASE" "$WORK/server.log"

echo "== seed filter with $KEYS keys =="
seq 1 "$KEYS" > "$WORK/keys.txt"
curl -sf -XPOST "$BASE/v1/filters" \
    -d "{\"name\":\"bench\",\"expected_keys\":$KEYS,\"bits_per_key\":16,\"shards\":4}" >/dev/null
"$WORK/bloomrfd" -probe-file "$WORK/keys.txt" -probe-url "$BASE" \
    -probe-filter bench -probe-op insert -probe-codec binary -probe-batch 8192

RUNS="$WORK/runs.jsonl"
echo "== open-loop query runs: qps ∈ {$QPS_LEVELS} × codec ∈ {json, binary} =="
for qps in $QPS_LEVELS; do
  for codec in json binary; do
    "$WORK/bloomrfd" -probe-file "$WORK/keys.txt" -probe-url "$BASE" \
        -probe-filter bench -probe-op query -probe-codec "$codec" \
        -probe-batch "$BATCH" -probe-target-qps "$qps" \
        -probe-duration "$DURATION" -probe-out "$RUNS"
  done
done

echo "== scrape /metrics for latency histograms =="
curl -sf "$BASE/metrics" > "$WORK/metrics.txt"
grep -c '^bloomrfd_op_latency_seconds_bucket' "$WORK/metrics.txt" >/dev/null || {
  if [ "$ASSERT" = "1" ]; then
    echo "ASSERT FAILED: /metrics exposes no bloomrfd_op_latency_seconds_bucket series" >&2
    exit 1
  fi
  echo "warning: no latency histogram series on /metrics" >&2
}
grep '^bloomrfd_op_latency_p99_seconds' "$WORK/metrics.txt" || true

echo "== per-phase breakdown (bloomrfd_phase_seconds) =="
# This server runs without -data-dir, so the WAL phases are legitimately
# absent here; the serve-side phases must all be present.
for phase in decode shard-dispatch probe encode; do
  if ! grep -q "^bloomrfd_phase_seconds_bucket{phase=\"$phase\"" "$WORK/metrics.txt"; then
    if [ "$ASSERT" = "1" ]; then
      echo "ASSERT FAILED: /metrics has no bloomrfd_phase_seconds series for phase=$phase" >&2
      exit 1
    fi
    echo "warning: no bloomrfd_phase_seconds series for phase=$phase" >&2
  fi
done
grep '^bloomrfd_phase_p99_seconds' "$WORK/metrics.txt" || true

# Aggregate per-phase wall time across op/codec into a JSON object that is
# embedded in the report, so the benchmark records where request time went.
PHASES_JSON="{"
sep=""
for phase in decode admission-wait shard-dispatch probe wal-append wal-fsync encode; do
  secs="$(awk -v ph="phase=\"$phase\"" '
    index($0, "bloomrfd_phase_seconds_sum{") == 1 && index($0, ph) { t += $NF }
    END { printf "%.9f", t }' "$WORK/metrics.txt")"
  PHASES_JSON="$PHASES_JSON$sep\"$phase\": $secs"
  sep=", "
done
PHASES_JSON="$PHASES_JSON}"
export PHASES_JSON
echo "phase seconds: $PHASES_JSON"

echo "== saturation run against -max-inflight-batches 1 =="
# A deliberately low slow-request threshold: under admission pressure every
# queued batch blows through 100us, so the tracer's sampled slow-request
# log must fire (rate-limited to 1/s/filter). JSON log format keeps the
# emitted line machine-parseable straight out of the server log.
"$WORK/bloomrfd" -addr "$ADDR2" -max-inflight-batches 1 \
    -slow-request-threshold 100us -log-format json \
    >>"$WORK/server2.log" 2>&1 &
PID2=$!
wait_healthy "$BASE2" "$WORK/server2.log"
curl -sf -XPOST "$BASE2/v1/filters" \
    -d "{\"name\":\"bench\",\"expected_keys\":$KEYS,\"bits_per_key\":16,\"shards\":4}" >/dev/null
"$WORK/bloomrfd" -probe-file "$WORK/keys.txt" -probe-url "$BASE2" \
    -probe-filter bench -probe-op query -probe-codec binary \
    -probe-batch 8192 -probe-target-qps 2000 -probe-duration 3s \
    -probe-out "$WORK/saturation.jsonl"

REJECTED="$(grep -o '"rejected":[0-9]*' "$WORK/saturation.jsonl" | head -1 | cut -d: -f2)"
curl -sf "$BASE2/metrics" | grep '^bloomrfd_admission' || true
if [ "${REJECTED:-0}" -lt 1 ]; then
  if [ "$ASSERT" = "1" ]; then
    echo "ASSERT FAILED: saturating run was never shed (rejected=$REJECTED, want ≥1 429)" >&2
    exit 1
  fi
  echo "warning: saturating run produced no 429s (rejected=$REJECTED)" >&2
else
  echo "saturation shed $REJECTED requests with 429 (admission control held)"
fi

SLOW_LINES="$(grep -c 'slow_request' "$WORK/server2.log" || true)"
if [ "${SLOW_LINES:-0}" -lt 1 ]; then
  if [ "$ASSERT" = "1" ]; then
    echo "ASSERT FAILED: saturated server logged no slow_request lines (threshold 100us)" >&2
    cat "$WORK/server2.log" >&2
    exit 1
  fi
  echo "warning: saturated server logged no slow_request lines" >&2
else
  echo "saturated server logged $SLOW_LINES slow_request line(s):"
  grep 'slow_request' "$WORK/server2.log" | head -2
fi

awk -v go_version="$(go version | cut -d' ' -f3)" \
    -v duration="$DURATION" -v batch="$BATCH" \
    -v now="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
{ runs[++n] = $0 }
END {
  printf "{\n"
  printf "  \"meta\": {\"go\": \"%s\", \"duration\": \"%s\", \"batch\": %s, \"generated\": \"%s\",\n", go_version, duration, batch, now
  printf "           \"methodology\": \"open-loop fixed schedule; latency measured from scheduled send time (no coordinated omission); saturation run targets a -max-inflight-batches 1 server\"},\n"
  printf "  \"phases_seconds\": %s,\n", ENVIRON["PHASES_JSON"]
  printf "  \"runs\": [\n"
  for (i = 1; i <= n; i++) printf "    %s%s\n", runs[i], (i < n ? "," : "")
  printf "  ]\n}\n"
}' "$RUNS" "$WORK/saturation.jsonl" > "$OUT"

echo "== wrote $OUT =="
cat "$OUT"
