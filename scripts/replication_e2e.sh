#!/usr/bin/env bash
# Primary → follower end-to-end check for bloomrfd's streaming replication:
# start a primary with a data dir, create a filter, load keys, snapshot,
# load 10k MORE keys (these live only in the write-ahead log), then start a
# warm standby with -follow. The standby must bootstrap from the primary's
# snapshot, replay the WAL tail, and answer the same point and range
# queries bit-identically — including keys the snapshot never saw. It must
# also reject writes (403), expose replication-lag gauges, and survive a
# primary restart by reconnecting and staying current.
# Run from the repository root: ./scripts/replication_e2e.sh
set -euo pipefail

P_ADDR="127.0.0.1:18177"
F_ADDR="127.0.0.1:18178"
P="http://$P_ADDR"
F="http://$F_ADDR"
# Mutations AND the replication stream are token-gated end to end: the
# primary demands the bearer token, the follower presents it via
# -auth-token, and an unauthenticated stream request must bounce with 401.
TOKEN="e2e-stream-secret"

# mpost is an authenticated mutating POST against the primary.
mpost() {
  curl -sf -H "Authorization: Bearer $TOKEN" -XPOST "$@"
}
WORK="$(mktemp -d)"
trap 'kill -9 $P_PID $F_PID 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/bloomrfd" ./cmd/bloomrfd

wait_healthy() { # url
  for _ in $(seq 1 100); do
    if curl -sf "$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "server at $1 did not become healthy" >&2
  cat "$WORK"/*.log >&2
  exit 1
}

start_primary() {
  "$WORK/bloomrfd" -addr "$P_ADDR" -data-dir "$WORK/data" -snapshot-interval 0 \
      -wal-sync always -auth-token "$TOKEN" >>"$WORK/primary.log" 2>&1 &
  P_PID=$!
  wait_healthy "$P"
}

start_follower() {
  "$WORK/bloomrfd" -addr "$F_ADDR" -follow "$P" -auth-token "$TOKEN" >>"$WORK/follower.log" 2>&1 &
  F_PID=$!
  wait_healthy "$F"
}

# wait_synced blocks until the follower's applied position reaches the
# primary's current WAL end.
wait_synced() {
  want=$(curl -sf "$P/v1/replication/status" | sed -n 's/.*"end_pos":\([0-9]*\).*/\1/p')
  for _ in $(seq 1 200); do
    got=$(curl -sf "$F/v1/replication/status" | sed -n 's/.*"applied_pos":\([0-9]*\).*/\1/p')
    if [ -n "$got" ] && [ "$got" -ge "$want" ]; then return 0; fi
    sleep 0.1
  done
  echo "follower never caught up (want $want, got ${got:-none}); logs:" >&2
  tail -20 "$WORK"/*.log >&2
  exit 1
}

# The acceptance query mix, run against either server: 64 pre-snapshot
# keys, 64 WAL-tail keys, 16 absent keys, 16 ranges over the tail region.
queries() { # base-url
  curl -sf -XPOST "$1/v1/filters/users/query" \
      -d "{\"keys\":[$(seq -s, 1000 1063)]}"
  curl -sf -XPOST "$1/v1/filters/users/query" \
      -d "{\"keys\":[$(seq -s, 700000 700063)]}"
  curl -sf -XPOST "$1/v1/filters/users/query" \
      -d "{\"keys\":[$(seq -s, 900000001 900000016)]}"
  local body='{"ranges":['
  for i in $(seq 0 15); do
    lo=$((700000 + i * 500))
    body+="{\"lo\":$lo,\"hi\":$((lo + 100))},"
  done
  body="${body%,}]}"
  curl -sf -XPOST "$1/v1/filters/users/query-range" -d "$body"
}

echo "== primary: create, load, snapshot, load 10k more (WAL-only) =="
start_primary
mpost "$P/v1/filters" \
    -d '{"name":"users","expected_keys":100000,"shards":4,"partitioning":"range"}' >/dev/null
mpost "$P/v1/filters/users/insert" \
    -d "{\"keys\":[$(seq -s, 1000 3000)]}" >/dev/null
mpost "$P/v1/filters/users/snapshot" -d '' >/dev/null
# 10k inserts after the snapshot: the follower can only get these from the
# replicated WAL tail.
for off in 0 2500 5000 7500; do
  mpost "$P/v1/filters/users/insert" \
      -d "{\"keys\":[$(seq -s, $((700000 + off)) $((700000 + off + 2499)))]}" >/dev/null
done

echo "== stream auth: unauthenticated stream bounces with 401 =="
code=$(curl -s -o /dev/null -w '%{http_code}' "$P/v1/replication/stream")
[ "$code" = "401" ] || { echo "unauthenticated stream answered $code, want 401"; exit 1; }

echo "== follower: bootstrap + tail (authenticated stream) =="
start_follower
wait_synced
queries "$P" > "$WORK/primary.answers"
queries "$F" > "$WORK/follower.answers"
diff "$WORK/primary.answers" "$WORK/follower.answers"
head -c 200 "$WORK/follower.answers" | grep -q '"results":\[true,true,true,true' \
  || { echo "follower lost pre-snapshot keys"; exit 1; }

echo "== follower is read-only and observable =="
code=$(curl -s -o /dev/null -w '%{http_code}' -XPOST "$F/v1/filters/users/insert" -d '{"key":1}')
[ "$code" = "403" ] || { echo "follower accepted a write ($code)"; exit 1; }
curl -sf "$F/metrics" | grep 'bloomrfd_replication_lag_bytes' >/dev/null \
  || { echo "follower metrics missing replication gauges"; exit 1; }
curl -sf "$F/metrics" | grep 'bloomrfd_readonly 1' >/dev/null \
  || { echo "follower metrics missing readonly gauge"; exit 1; }

echo "== live tail: new writes reach the follower =="
mpost "$P/v1/filters/users/insert" \
    -d "{\"keys\":[$(seq -s, 800000 800100)]}" >/dev/null
wait_synced
p=$(curl -sf -XPOST "$P/v1/filters/users/query" -d "{\"keys\":[$(seq -s, 800000 800063)]}")
f=$(curl -sf -XPOST "$F/v1/filters/users/query" -d "{\"keys\":[$(seq -s, 800000 800063)]}")
[ "$p" = "$f" ] || { echo "live tail diverged: $p vs $f"; exit 1; }

echo "== primary restart: follower reconnects and stays current =="
kill -9 "$P_PID"
wait "$P_PID" 2>/dev/null || true
start_primary
mpost "$P/v1/filters/users/insert" \
    -d "{\"keys\":[$(seq -s, 810000 810100)]}" >/dev/null
wait_synced
p=$(curl -sf -XPOST "$P/v1/filters/users/query" -d "{\"keys\":[$(seq -s, 810000 810063)]}")
f=$(curl -sf -XPOST "$F/v1/filters/users/query" -d "{\"keys\":[$(seq -s, 810000 810063)]}")
[ "$p" = "$f" ] || { echo "post-restart tail diverged: $p vs $f"; exit 1; }

kill "$P_PID" "$F_PID"
wait "$P_PID" "$F_PID" 2>/dev/null || true
echo "replication e2e: OK (follower bit-identical through bootstrap, tail, and primary restart)"
