// Command gen_golden_v5 regenerates the checked-in golden v5 snapshot
// fixture at internal/server/testdata/golden-v5-store. The fixture is a
// split-era (manifest format_version 5) snapshot — the manifest records the
// span-start table and per-shard mutation epochs that arrived with live
// splitting, but no promotion epoch (that arrived in v6 with failover) —
// used by TestGoldenV5SnapshotRestore to pin that snapshots written just
// before failover existed stay restorable and re-snapshot as v6 with an
// epoch recorded.
//
// It only needs re-running if the filter block format itself changes (which
// the golden blob in internal/core/testdata guards separately); the
// manifest bytes are written from literal v5 structs with a fixed
// timestamp, so regeneration is deterministic.
//
//	go run ./scripts/gen_golden_v5
package main

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"

	"repro/internal/server"
)

// v5 manifest schema, frozen as it was written after span-start tables and
// shard mutation epochs but before promotion epochs.
type v5Options struct {
	ExpectedKeys uint64  `json:"expected_keys"`
	BitsPerKey   float64 `json:"bits_per_key"`
	MaxRange     float64 `json:"max_range"`
	Shards       int     `json:"shards"`
	Partitioning string  `json:"partitioning"`
	Backend      string  `json:"backend"`
}

type v5ShardEntry struct {
	File   string `json:"file"`
	Bytes  int64  `json:"bytes"`
	CRC32C uint32 `json:"crc32c"`
	Keys   uint64 `json:"keys,omitempty"`
	Mut    uint64 `json:"mut,omitempty"`
}

type v5Manifest struct {
	FormatVersion int            `json:"format_version"`
	Name          string         `json:"name"`
	Seq           uint64         `json:"seq"`
	CreatedUnix   int64          `json:"created_unix_nano"`
	Options       v5Options      `json:"options"`
	InsertedKeys  uint64         `json:"inserted_keys"`
	Shards        []v5ShardEntry `json:"shards"`
	WALPos        uint64         `json:"wal_pos,omitempty"`
	Spans         []uint64       `json:"spans,omitempty"`
}

// fixtureKeys is the deterministic insert set shared by every golden
// fixture; the restore tests probe the same sequence.
func fixtureKeys() []uint64 {
	keys := make([]uint64, 1024)
	for i := range keys {
		keys[i] = uint64(i) * 0x9e3779b97f4a7c15 // spread across the keyspace
	}
	return keys
}

func main() {
	opt := server.FilterOptions{
		ExpectedKeys: 4096,
		BitsPerKey:   16,
		Shards:       4,
		Partitioning: server.PartitionRange,
		Backend:      "bloomrf",
	}
	f, err := server.NewSharded(opt)
	if err != nil {
		log.Fatal(err)
	}
	keys := fixtureKeys()
	f.InsertBatch(keys)

	snapDir := filepath.Join("internal", "server", "testdata", "golden-v5-store", "ledger", "snap-0000000001")
	if err := os.MkdirAll(snapDir, 0o755); err != nil {
		log.Fatal(err)
	}
	st := f.Stats()
	man := v5Manifest{
		FormatVersion: 5,
		Name:          "ledger",
		Seq:           1,
		CreatedUnix:   1753600000000000000, // fixed so regeneration is byte-stable
		Options: v5Options{
			ExpectedKeys: opt.ExpectedKeys,
			BitsPerKey:   opt.BitsPerKey,
			Shards:       opt.Shards,
			Partitioning: string(opt.Partitioning),
			Backend:      opt.Backend,
		},
		InsertedKeys: uint64(len(keys)),
		WALPos:       8192, // a v5 snapshot taken with a live WAL records its position
		Spans:        st.Spans,
	}
	castagnoli := crc32.MakeTable(crc32.Castagnoli)
	for i := 0; i < f.NumShards(); i++ {
		blob, err := f.MarshalShard(i)
		if err != nil {
			log.Fatal(err)
		}
		file := filepath.Join(snapDir, fmt.Sprintf("shard-%04d.bin", i))
		if err := os.WriteFile(file, blob, 0o644); err != nil {
			log.Fatal(err)
		}
		man.Shards = append(man.Shards, v5ShardEntry{
			File:   filepath.Base(file),
			Bytes:  int64(len(blob)),
			CRC32C: crc32.Checksum(blob, castagnoli),
			Keys: st.ShardKeys[i],
			// v5 writers record the shard's live mutation epoch; restore
			// ignores the value, so the fixture freezes a plausible one.
			Mut: 1,
		})
	}
	body, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(snapDir, "manifest.json"), body, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote v5 fixture under %s", snapDir)
}
