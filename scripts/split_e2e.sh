#!/usr/bin/env bash
# Auto-split end-to-end check for bloomrfd's hot-span splitting:
# start the daemon with -auto-split-skew-threshold set, drive a heavily
# skewed insert workload at it through the probe client (binary codec, the
# same path a real loader takes), and require that the server acted on the
# skew on its own: the split counter moves, key_skew drops from its peak,
# and not one request errored while the routing table was swapped live.
# Run from the repository root: ./scripts/split_e2e.sh
set -euo pipefail

ADDR="127.0.0.1:18079"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
trap 'kill -9 $PID 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/bloomrfd" ./cmd/bloomrfd

"$WORK/bloomrfd" -addr "$ADDR" -data-dir "$WORK/data" -snapshot-interval 0 \
    -auto-split-skew-threshold 2 >>"$WORK/server.log" 2>&1 &
PID=$!
for _ in $(seq 1 100); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null || { cat "$WORK/server.log" >&2; exit 1; }

echo "== create + skewed load =="
curl -sf -XPOST "$BASE/v1/filters" \
    -d '{"name":"hot","expected_keys":200000,"shards":4,"partitioning":"range"}' >/dev/null

# 60k keys uniform in [0, 2^40): every one lands in the first of four
# 2^62-wide spans, so key_skew sits at ~4 until the server divides the hot
# span. The distribution stays uniform inside the cluster, so the
# histogram-median splits converge instead of chasing a point mass.
# (%.0f, not %d: mawk's %d saturates at 2^31-1, which would collapse the
# whole file onto one key — a point mass no range split can divide.)
awk 'BEGIN{srand(7); for(i=0;i<60000;i++) printf "%.0f\n", int(rand()*(2^40))}' \
    > "$WORK/keys.txt"

skew() {
  curl -sf "$BASE/metrics" | awk '/^bloomrfd_filter_key_skew\{filter="hot"\}/ {print $2}'
}
splits() {
  curl -sf "$BASE/metrics" | awk '/^bloomrfd_filter_splits_total\{filter="hot"\}/ {print $2}'
  # absent until the first split
}

# The probe exits non-zero on any non-200 response, so a clean exit here
# doubles as the "no errors during live swaps" assertion.
"$WORK/bloomrfd" -probe-file "$WORK/keys.txt" -probe-url "$BASE" \
    -probe-filter hot -probe-op insert -probe-codec binary -probe-batch 2048 \
    || { echo "insert probe saw error responses"; exit 1; }
S1="$(skew)"
echo "key_skew after first wave: $S1"

# More waves re-trigger auto-split episodes (the per-filter check is
# throttled to 1/s) until the skew converges under the threshold.
DEADLINE=$((SECONDS + 60))
S2="$S1"
while :; do
  "$WORK/bloomrfd" -probe-file "$WORK/keys.txt" -probe-url "$BASE" \
      -probe-filter hot -probe-op insert -probe-codec binary -probe-batch 2048 \
      >/dev/null || { echo "insert probe saw error responses"; exit 1; }
  S2="$(skew)"
  N="$(splits)"
  echo "key_skew=$S2 splits_total=${N:-0}"
  if [ -n "$N" ] && awk -v s="$S2" 'BEGIN{exit !(s <= 2.5)}'; then break; fi
  [ "$SECONDS" -lt "$DEADLINE" ] || { echo "auto-split did not converge: skew=$S2 splits=${N:-0}"; exit 1; }
  sleep 1.1
done

# The skew must actually have dropped from its pre-split peak (unless the
# first scrape already raced the first episode's improvement).
awk -v a="$S1" -v b="$S2" 'BEGIN{exit !(b < a || a <= 2.5)}' \
  || { echo "key_skew never dropped: first=$S1 final=$S2"; exit 1; }

echo "== queries answer clean across the grown topology =="
"$WORK/bloomrfd" -probe-file "$WORK/keys.txt" -probe-url "$BASE" \
    -probe-filter hot -probe-op query -probe-codec binary -probe-batch 2048 \
    || { echo "query probe saw error responses"; exit 1; }

SHARDS="$(curl -sf "$BASE/v1/filters/hot" | grep -o '"shards":[0-9]*' | head -1 | cut -d: -f2)"
[ "$SHARDS" -gt 4 ] || { echo "shard count never grew: $SHARDS"; exit 1; }
grep -q 'info=span_split' "$WORK/server.log" \
  || { echo "server log missing span_split lines"; exit 1; }

kill "$PID"
wait "$PID" 2>/dev/null || true
echo "split e2e: OK (auto-split divided the hot span: skew $S1 -> $S2, $SHARDS shards, zero error responses)"
