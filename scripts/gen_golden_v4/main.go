// Command gen_golden_v4 regenerates the checked-in golden v4 snapshot
// fixture at internal/server/testdata/golden-v4-store. The fixture is a
// backend-era (manifest format_version 4) snapshot — options record the
// backend, but the manifest carries no span-start table and the shard
// entries no mutation epochs (both arrived in v5 with live splitting) —
// used by TestGoldenV4SnapshotRestore to pin that snapshots written just
// before splitting existed stay restorable, rebuild their spans by even
// division, and re-snapshot as v5.
//
// It only needs re-running if the filter block format itself changes (which
// the golden blob in internal/core/testdata guards separately); the
// manifest bytes are written from literal v4 structs with a fixed
// timestamp, so regeneration is deterministic.
//
//	go run ./scripts/gen_golden_v4
package main

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"

	"repro/internal/server"
)

// v4 manifest schema, frozen as it was written after backend selection but
// before span-start tables and shard mutation epochs.
type v4Options struct {
	ExpectedKeys uint64  `json:"expected_keys"`
	BitsPerKey   float64 `json:"bits_per_key"`
	MaxRange     float64 `json:"max_range"`
	Shards       int     `json:"shards"`
	Partitioning string  `json:"partitioning"`
	Backend      string  `json:"backend"`
}

type v4ShardEntry struct {
	File   string `json:"file"`
	Bytes  int64  `json:"bytes"`
	CRC32C uint32 `json:"crc32c"`
	Keys   uint64 `json:"keys,omitempty"`
}

type v4Manifest struct {
	FormatVersion int            `json:"format_version"`
	Name          string         `json:"name"`
	Seq           uint64         `json:"seq"`
	CreatedUnix   int64          `json:"created_unix_nano"`
	Options       v4Options      `json:"options"`
	InsertedKeys  uint64         `json:"inserted_keys"`
	Shards        []v4ShardEntry `json:"shards"`
	WALPos        uint64         `json:"wal_pos,omitempty"`
}

// fixtureKeys is the deterministic insert set shared by every golden
// fixture; the restore tests probe the same sequence.
func fixtureKeys() []uint64 {
	keys := make([]uint64, 1024)
	for i := range keys {
		keys[i] = uint64(i) * 0x9e3779b97f4a7c15 // spread across the keyspace
	}
	return keys
}

func main() {
	opt := server.FilterOptions{
		ExpectedKeys: 4096,
		BitsPerKey:   16,
		Shards:       4,
		Partitioning: server.PartitionRange,
		Backend:      "bloomrf", // v4 manifests record the backend explicitly
	}
	f, err := server.NewSharded(opt)
	if err != nil {
		log.Fatal(err)
	}
	keys := fixtureKeys()
	f.InsertBatch(keys)

	snapDir := filepath.Join("internal", "server", "testdata", "golden-v4-store", "orders", "snap-0000000001")
	if err := os.MkdirAll(snapDir, 0o755); err != nil {
		log.Fatal(err)
	}
	man := v4Manifest{
		FormatVersion: 4,
		Name:          "orders",
		Seq:           1,
		CreatedUnix:   1753600000000000000, // fixed so regeneration is byte-stable
		Options: v4Options{
			ExpectedKeys: opt.ExpectedKeys,
			BitsPerKey:   opt.BitsPerKey,
			Shards:       opt.Shards,
			Partitioning: string(opt.Partitioning),
			Backend:      opt.Backend,
		},
		InsertedKeys: uint64(len(keys)),
		WALPos:       8192, // a v4 snapshot taken with a live WAL records its position
	}
	st := f.Stats()
	castagnoli := crc32.MakeTable(crc32.Castagnoli)
	for i := 0; i < f.NumShards(); i++ {
		blob, err := f.MarshalShard(i)
		if err != nil {
			log.Fatal(err)
		}
		file := filepath.Join(snapDir, fmt.Sprintf("shard-%04d.bin", i))
		if err := os.WriteFile(file, blob, 0o644); err != nil {
			log.Fatal(err)
		}
		man.Shards = append(man.Shards, v4ShardEntry{
			File:   filepath.Base(file),
			Bytes:  int64(len(blob)),
			CRC32C: crc32.Checksum(blob, castagnoli),
			Keys:   st.ShardKeys[i],
		})
	}
	body, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(snapDir, "manifest.json"), body, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote v4 fixture under %s", snapDir)
}
