// Command gen_golden_v3 regenerates the checked-in golden v3 snapshot
// fixture at internal/server/testdata/golden-v3-store. The fixture is a
// WAL-era (manifest format_version 3) snapshot — options with a
// partitioning record but no backend field (backend selection arrived in
// v4), plus a wal_pos — used by TestGoldenV3SnapshotRestore to pin that
// snapshots written before backend selection existed stay restorable and
// come back as bloomRF filters.
//
// It only needs re-running if the filter block format itself changes (which
// the golden blob in internal/core/testdata guards separately); the
// manifest bytes are written from literal v3 structs with a fixed
// timestamp, so regeneration is deterministic.
//
//	go run ./scripts/gen_golden_v3
package main

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"

	"repro/internal/server"
)

// v3 manifest schema, frozen as it was written before the backend field
// existed.
type v3Options struct {
	ExpectedKeys uint64  `json:"expected_keys"`
	BitsPerKey   float64 `json:"bits_per_key"`
	MaxRange     float64 `json:"max_range"`
	Shards       int     `json:"shards"`
	Partitioning string  `json:"partitioning"`
}

type v3ShardEntry struct {
	File   string `json:"file"`
	Bytes  int64  `json:"bytes"`
	CRC32C uint32 `json:"crc32c"`
	Keys   uint64 `json:"keys,omitempty"`
}

type v3Manifest struct {
	FormatVersion int            `json:"format_version"`
	Name          string         `json:"name"`
	Seq           uint64         `json:"seq"`
	CreatedUnix   int64          `json:"created_unix_nano"`
	Options       v3Options      `json:"options"`
	InsertedKeys  uint64         `json:"inserted_keys"`
	Shards        []v3ShardEntry `json:"shards"`
	WALPos        uint64         `json:"wal_pos,omitempty"`
}

// fixtureKeys is the deterministic insert set shared by every golden
// fixture; the restore tests probe the same sequence.
func fixtureKeys() []uint64 {
	keys := make([]uint64, 1024)
	for i := range keys {
		keys[i] = uint64(i) * 0x9e3779b97f4a7c15 // spread across the keyspace
	}
	return keys
}

func main() {
	opt := server.FilterOptions{
		ExpectedKeys: 4096,
		BitsPerKey:   16,
		Shards:       4,
		Partitioning: server.PartitionRange,
		// Backend left empty: NewSharded defaults it to bloomrf, and the
		// frozen v3 manifest below never records it.
	}
	f, err := server.NewSharded(opt)
	if err != nil {
		log.Fatal(err)
	}
	keys := fixtureKeys()
	f.InsertBatch(keys)

	snapDir := filepath.Join("internal", "server", "testdata", "golden-v3-store", "sessions", "snap-0000000001")
	if err := os.MkdirAll(snapDir, 0o755); err != nil {
		log.Fatal(err)
	}
	man := v3Manifest{
		FormatVersion: 3,
		Name:          "sessions",
		Seq:           1,
		CreatedUnix:   1753600000000000000, // fixed so regeneration is byte-stable
		Options: v3Options{
			ExpectedKeys: opt.ExpectedKeys,
			BitsPerKey:   opt.BitsPerKey,
			Shards:       opt.Shards,
			Partitioning: string(opt.Partitioning),
		},
		InsertedKeys: uint64(len(keys)),
		WALPos:       8192, // a v3 snapshot taken with a live WAL records its position
	}
	st := f.Stats()
	castagnoli := crc32.MakeTable(crc32.Castagnoli)
	for i := 0; i < f.NumShards(); i++ {
		blob, err := f.MarshalShard(i)
		if err != nil {
			log.Fatal(err)
		}
		file := filepath.Join(snapDir, fmt.Sprintf("shard-%04d.bin", i))
		if err := os.WriteFile(file, blob, 0o644); err != nil {
			log.Fatal(err)
		}
		man.Shards = append(man.Shards, v3ShardEntry{
			File:   filepath.Base(file),
			Bytes:  int64(len(blob)),
			CRC32C: crc32.Checksum(blob, castagnoli),
			Keys:   st.ShardKeys[i],
		})
	}
	body, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(snapDir, "manifest.json"), body, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote v3 fixture under %s", snapDir)
}
