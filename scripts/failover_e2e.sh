#!/usr/bin/env bash
# Failover end-to-end check for bloomrfd's follower promotion with epoch
# fencing: start a primary and a promotable warm standby (-follow AND
# -data-dir), load acked writes, SIGKILL the primary, detect the loss via
# -replication-heartbeat-timeout, promote the standby to a writable primary
# at epoch 2, and verify ZERO acked-write loss — every key the dead primary
# ever acknowledged must answer true on the new primary. Then restart the
# old primary and prove both fencing outcomes: its own endpoints answer 409
# the moment they hear about epoch 2, and re-pointed at the new primary with
# -follow it steps down and resyncs bit-identically.
# Run from the repository root: ./scripts/failover_e2e.sh
set -euo pipefail

P_ADDR="127.0.0.1:18187"
S_ADDR="127.0.0.1:18188"
P="http://$P_ADDR"
S="http://$S_ADDR"
TOKEN="e2e-failover-secret"

# mpost is an authenticated mutating POST.
mpost() {
  curl -sf -H "Authorization: Bearer $TOKEN" -XPOST "$@"
}
WORK="$(mktemp -d)"
trap 'kill -9 $P_PID $S_PID 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/bloomrfd" ./cmd/bloomrfd

wait_healthy() { # url
  for _ in $(seq 1 100); do
    if curl -sf "$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "server at $1 did not become healthy" >&2
  cat "$WORK"/*.log >&2
  exit 1
}

# wait_synced blocks until the standby's applied position reaches the
# primary's current WAL end.
wait_synced() { # primary-url standby-url
  want=$(curl -sf "$1/v1/replication/status" | sed -n 's/.*"end_pos":\([0-9]*\).*/\1/p')
  for _ in $(seq 1 200); do
    got=$(curl -sf "$2/v1/replication/status" | sed -n 's/.*"applied_pos":\([0-9]*\).*/\1/p')
    if [ -n "$got" ] && [ "$got" -ge "$want" ]; then return 0; fi
    sleep 0.1
  done
  echo "standby never caught up (want $want, got ${got:-none}); logs:" >&2
  tail -20 "$WORK"/*.log >&2
  exit 1
}

# assert_all_true queries a key range on a server and fails on any miss:
# the filter has no false negatives, so an acked key answering false is a
# lost write.
assert_all_true() { # base-url lo hi label
  local out
  out=$(curl -sf -XPOST "$1/v1/filters/ledger/query" -d "{\"keys\":[$(seq -s, "$2" "$3")]}")
  if echo "$out" | grep -q 'false'; then
    echo "LOST ACKED WRITES in $4 (keys $2..$3): $out" >&2
    exit 1
  fi
}

echo "== primary + promotable standby up, 20k acked writes =="
"$WORK/bloomrfd" -addr "$P_ADDR" -data-dir "$WORK/primary" -snapshot-interval 0 \
    -wal-sync always -auth-token "$TOKEN" >>"$WORK/primary.log" 2>&1 &
P_PID=$!
wait_healthy "$P"
"$WORK/bloomrfd" -addr "$S_ADDR" -follow "$P" -data-dir "$WORK/standby" \
    -wal-sync always -auth-token "$TOKEN" \
    -replication-heartbeat-timeout 2s >>"$WORK/standby.log" 2>&1 &
S_PID=$!
wait_healthy "$S"

mpost "$P/v1/filters" \
    -d '{"name":"ledger","expected_keys":100000,"shards":4,"partitioning":"range"}' >/dev/null
# Every one of these inserts returns 200 (curl -sf aborts otherwise): all
# 20k keys are ACKED writes and none may be lost across the failover.
for off in 0 4000 8000 12000 16000; do
  mpost "$P/v1/filters/ledger/insert" \
      -d "{\"keys\":[$(seq -s, $((1000 + off)) $((1000 + off + 3999)))]}" >/dev/null
done

echo "== replication barrier, then SIGKILL the primary =="
wait_synced "$P" "$S"
kill -9 "$P_PID"
wait "$P_PID" 2>/dev/null || true

echo "== heartbeat loss surfaces as primary_unreachable =="
for _ in $(seq 1 100); do
  if curl -sf "$S/v1/replication/status" | grep -q '"primary_unreachable":true'; then break; fi
  sleep 0.1
done
curl -sf "$S/v1/replication/status" | grep -q '"primary_unreachable":true' \
  || { echo "standby never noticed the dead primary"; exit 1; }

echo "== promote the standby: epoch 2, writable =="
out=$(mpost "$S/v1/replication/promote" -d '')
echo "$out" | grep -q '"promoted":true' || { echo "promote failed: $out"; exit 1; }
echo "$out" | grep -q '"epoch":2' || { echo "promote at wrong epoch: $out"; exit 1; }
# Promotion is idempotent: a repeat is a no-op 200.
out=$(mpost "$S/v1/replication/promote" -d '')
echo "$out" | grep -q '"promoted":false' || { echo "repeat promote not idempotent: $out"; exit 1; }
curl -sf "$S/v1/replication/status" | grep -q '"role":"primary"' \
  || { echo "promoted standby does not report primary"; exit 1; }
curl -sf "$S/metrics" | grep -q 'bloomrfd_epoch 2' \
  || { echo "promoted standby metrics missing epoch 2"; exit 1; }

echo "== zero acked-write loss on the new primary =="
for off in 0 4000 8000 12000 16000; do
  assert_all_true "$S" $((1000 + off)) $((1000 + off + 3999)) "new primary"
done

echo "== the new primary serves fresh writes =="
mpost "$S/v1/filters/ledger/insert" \
    -d "{\"keys\":[$(seq -s, 900000 900100)]}" >/dev/null
assert_all_true "$S" 900000 900100 "post-failover writes"

echo "== restarted old primary is fenced by the epoch handshake =="
"$WORK/bloomrfd" -addr "$P_ADDR" -data-dir "$WORK/primary" -snapshot-interval 0 \
    -wal-sync always -auth-token "$TOKEN" >>"$WORK/primary.log" 2>&1 &
P_PID=$!
wait_healthy "$P"
# The handshake a follower of the new world performs against it: epoch 2
# supersedes its epoch 1, so it must fence, and every mutation after that
# answers 409 too.
code=$(curl -s -o /dev/null -w '%{http_code}' -H "Authorization: Bearer $TOKEN" \
    "$P/v1/replication/stream?from=0&epoch=2")
[ "$code" = "409" ] || { echo "old primary stream at epoch 2 answered $code, want 409"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -H "Authorization: Bearer $TOKEN" \
    -XPOST "$P/v1/filters/ledger/insert" -d '{"keys":[31337]}')
[ "$code" = "409" ] || { echo "fenced old primary accepted a write ($code)"; exit 1; }
curl -sf "$P/v1/replication/status" | grep -q '"fenced":true' \
  || { echo "old primary does not report fenced"; exit 1; }
kill -9 "$P_PID"
wait "$P_PID" 2>/dev/null || true

echo "== old primary rejoins as a follower of the new primary =="
"$WORK/bloomrfd" -addr "$P_ADDR" -follow "$S" -data-dir "$WORK/primary-rejoin" \
    -wal-sync always -auth-token "$TOKEN" >>"$WORK/rejoin.log" 2>&1 &
P_PID=$!
wait_healthy "$P"
wait_synced "$S" "$P"
curl -sf "$P/v1/replication/status" | grep -q '"epoch":2' \
  || { echo "rejoined follower did not adopt epoch 2"; exit 1; }
# Bit-identical serving across the whole history: pre-failover acked keys
# AND post-failover writes, from the ex-primary now following.
for range_start in 1000 17000 900000; do
  range_end=$((range_start + 100))
  p=$(curl -sf -XPOST "$P/v1/filters/ledger/query" -d "{\"keys\":[$(seq -s, $range_start $range_end)]}")
  s=$(curl -sf -XPOST "$S/v1/filters/ledger/query" -d "{\"keys\":[$(seq -s, $range_start $range_end)]}")
  [ "$p" = "$s" ] || { echo "rejoined follower diverged on $range_start..$range_end"; exit 1; }
done

kill "$P_PID" "$S_PID"
wait "$P_PID" "$S_PID" 2>/dev/null || true
echo "failover e2e: OK (zero acked-write loss, promotion at epoch 2, old primary fenced then rejoined)"
