#!/usr/bin/env bash
# Benchmark harness for the batch pipeline: runs the core batch benches
# (layer-major probes, internal/core via the root package) and the
# end-to-end serving benches (JSON vs binary codec through the full
# handler path, internal/server), and emits one machine-readable JSON
# report with the raw numbers plus the derived binary-vs-JSON speedups.
#
# Usage, from the repository root:
#
#   ./scripts/bench.sh                   # full run (BENCHTIME=1s), writes BENCH_PR5.json
#   BENCHTIME=100x ./scripts/bench.sh    # CI smoke: fixed iteration count
#   OUT=/tmp/report.json ./scripts/bench.sh
#
# Workloads use fixed seeds (see bench_test.go and wire_bench_test.go), so
# two runs on the same machine measure the same key streams. Methodology
# notes live in docs/performance.md.
set -euo pipefail

BENCHTIME="${BENCHTIME:-1s}"
OUT="${OUT:-BENCH_PR5.json}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== core batch benches (-benchtime $BENCHTIME) =="
go test -run xxx -bench 'BenchmarkBatch(PointLookup|Insert|RangeLookup)$' \
    -benchtime "$BENCHTIME" . | tee "$WORK/core.txt"

echo "== end-to-end serving benches: JSON vs binary (-benchtime $BENCHTIME) =="
go test -run xxx -bench 'BenchmarkServerBatch(Query|Insert|Range)(JSON|Binary)$' \
    -benchtime "$BENCHTIME" ./internal/server | tee "$WORK/server.txt"

awk -v go_version="$(go version | cut -d' ' -f3)" \
    -v benchtime="$BENCHTIME" \
    -v now="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    ns = ""; keys = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")  ns   = $(i-1)
        if ($i == "keys/s") keys = $(i-1)
    }
    if (ns == "") next
    order[++n] = name
    nsop[name] = ns
    keysps[name] = keys
}
END {
    printf "{\n"
    printf "  \"meta\": {\"go\": \"%s\", \"benchtime\": \"%s\", \"generated\": \"%s\"},\n", go_version, benchtime, now
    printf "  \"benches\": {\n"
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s", name, nsop[name]
        if (keysps[name] != "") printf ", \"keys_per_s\": %s", keysps[name]
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  },\n"
    printf "  \"derived\": {\n"
    first = 1
    pairs["query"] = "BenchmarkServerBatchQuery"
    pairs["insert"] = "BenchmarkServerBatchInsert"
    pairs["range"] = "BenchmarkServerBatchRange"
    shards[1] = "shards=1"; shards[2] = "shards=8"
    for (p in pairs) {
        for (s = 1; s <= 2; s++) {
            jname = pairs[p] "JSON/" shards[s]
            bname = pairs[p] "Binary/" shards[s]
            if (nsop[jname] != "" && nsop[bname] != "" && nsop[bname] + 0 > 0) {
                if (!first) printf ",\n"
                first = 0
                printf "    \"binary_vs_json_%s_%s\": %.2f", p, shards[s], nsop[jname] / nsop[bname]
            }
        }
    }
    printf "\n  }\n"
    printf "}\n"
}' "$WORK/core.txt" "$WORK/server.txt" > "$OUT"

echo "== wrote $OUT =="
cat "$OUT"
