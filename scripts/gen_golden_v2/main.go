// Command gen_golden_v2 regenerates the checked-in golden v2 snapshot
// fixture at internal/server/testdata/golden-v2-store. The fixture is a
// range-partitioning-era (manifest format_version 2) snapshot — options with
// a partitioning record and shard entries with per-shard key counts, but no
// WAL position — used by TestGoldenV2SnapshotRestore to pin that snapshots
// written before the write-ahead log existed stay restorable.
//
// It only needs re-running if the filter block format itself changes (which
// the golden blob in internal/core/testdata guards separately); the
// manifest bytes are written from literal v2 structs with a fixed
// timestamp, so regeneration is deterministic.
//
//	go run ./scripts/gen_golden_v2
package main

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"

	"repro/internal/server"
)

// v2 manifest schema, frozen as it was written before the WAL position
// record existed.
type v2Options struct {
	ExpectedKeys uint64  `json:"expected_keys"`
	BitsPerKey   float64 `json:"bits_per_key"`
	MaxRange     float64 `json:"max_range"`
	Shards       int     `json:"shards"`
	Partitioning string  `json:"partitioning"`
}

type v2ShardEntry struct {
	File   string `json:"file"`
	Bytes  int64  `json:"bytes"`
	CRC32C uint32 `json:"crc32c"`
	Keys   uint64 `json:"keys,omitempty"`
}

type v2Manifest struct {
	FormatVersion int            `json:"format_version"`
	Name          string         `json:"name"`
	Seq           uint64         `json:"seq"`
	CreatedUnix   int64          `json:"created_unix_nano"`
	Options       v2Options      `json:"options"`
	InsertedKeys  uint64         `json:"inserted_keys"`
	Shards        []v2ShardEntry `json:"shards"`
}

// fixtureKeys is the deterministic insert set; the restore test probes the
// same sequence.
func fixtureKeys() []uint64 {
	keys := make([]uint64, 1024)
	for i := range keys {
		keys[i] = uint64(i) * 0x9e3779b97f4a7c15 // spread across the keyspace
	}
	return keys
}

func main() {
	opt := server.FilterOptions{
		ExpectedKeys: 4096,
		BitsPerKey:   16,
		Shards:       4,
		Partitioning: server.PartitionRange,
	}
	f, err := server.NewSharded(opt)
	if err != nil {
		log.Fatal(err)
	}
	keys := fixtureKeys()
	f.InsertBatch(keys)

	snapDir := filepath.Join("internal", "server", "testdata", "golden-v2-store", "events", "snap-0000000001")
	if err := os.MkdirAll(snapDir, 0o755); err != nil {
		log.Fatal(err)
	}
	man := v2Manifest{
		FormatVersion: 2,
		Name:          "events",
		Seq:           1,
		CreatedUnix:   1753600000000000000, // fixed so regeneration is byte-stable
		Options: v2Options{
			ExpectedKeys: opt.ExpectedKeys,
			BitsPerKey:   opt.BitsPerKey,
			Shards:       opt.Shards,
			Partitioning: string(opt.Partitioning),
		},
		InsertedKeys: uint64(len(keys)),
	}
	st := f.Stats()
	castagnoli := crc32.MakeTable(crc32.Castagnoli)
	for i := 0; i < f.NumShards(); i++ {
		blob, err := f.MarshalShard(i)
		if err != nil {
			log.Fatal(err)
		}
		file := filepath.Join(snapDir, fmt.Sprintf("shard-%04d.bin", i))
		if err := os.WriteFile(file, blob, 0o644); err != nil {
			log.Fatal(err)
		}
		man.Shards = append(man.Shards, v2ShardEntry{
			File:   filepath.Base(file),
			Bytes:  int64(len(blob)),
			CRC32C: crc32.Checksum(blob, castagnoli),
			Keys:   st.ShardKeys[i],
		})
	}
	body, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(snapDir, "manifest.json"), body, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote v2 fixture under %s", snapDir)
}
