#!/usr/bin/env bash
# YCSB-driven LSM filter comparison: the paper's end-to-end scenario
# (bloomRF vs Bloom vs Rosetta vs SuRF inside the compaction-disabled LSM
# store) reproduced as one command. Builds bloomrfd and runs its
# -lsm-bench mode, which loads the dataset once per (mix, backend) pair,
# replays the byte-identical YCSB trace, and reports data blocks read,
# false-positive rate on ground-truth-empty queries, and IO saved vs the
# Bloom baseline.
#
# Usage, from the repository root:
#
#   ./scripts/lsm_bench.sh                      # full run, writes BENCH_PR6.json
#   KEYS=30000 OPS=3000 TABLES=10 ./scripts/lsm_bench.sh   # CI smoke scale
#   OUT=/tmp/report.json MIXES=A,E,range ./scripts/lsm_bench.sh
#   ASSERT=1 ./scripts/lsm_bench.sh             # fail unless bloomRF ≤ Bloom on the range mix
#
# Workload traces are pure functions of the seed (see internal/workload's
# golden-trace test), so two runs measure identical operation streams.
set -euo pipefail

OUT="${OUT:-BENCH_PR6.json}"
KEYS="${KEYS:-200000}"
OPS="${OPS:-20000}"
TABLES="${TABLES:-25}"
BITS="${BITS:-16}"
MIXES="${MIXES:-A,C,E,range}"
SEED="${SEED:-42}"
ASSERT="${ASSERT:-0}"

ASSERT_FLAG=""
if [ "$ASSERT" != "0" ]; then
    ASSERT_FLAG="-lsm-bench-assert"
fi

go run ./cmd/bloomrfd -lsm-bench \
    -lsm-bench-out "$OUT" \
    -lsm-bench-keys "$KEYS" \
    -lsm-bench-ops "$OPS" \
    -lsm-bench-tables "$TABLES" \
    -lsm-bench-bits "$BITS" \
    -lsm-bench-mixes "$MIXES" \
    -lsm-bench-seed "$SEED" \
    $ASSERT_FLAG

echo "report: $OUT"
