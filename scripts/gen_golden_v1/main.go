// Command gen_golden_v1 regenerates the checked-in golden v1 snapshot
// fixture at internal/server/testdata/golden-v1-store. The fixture is a
// hash-era (manifest format_version 1) snapshot — options without a
// partitioning record, shard entries without per-shard key counts — used by
// TestGoldenV1SnapshotRestore to pin that snapshots written before the
// partitioner abstraction stay restorable.
//
// It only needs re-running if the filter block format itself changes (which
// the golden blob in internal/core/testdata guards separately); the
// manifest bytes are written from literal v1 structs with a fixed
// timestamp, so regeneration is deterministic.
//
//	go run ./scripts/gen_golden_v1
package main

import (
	"encoding/json"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"

	"repro/internal/server"
)

// v1 manifest schema, frozen as it was written before the partitioning
// record and per-shard key counts existed.
type v1Options struct {
	ExpectedKeys uint64  `json:"expected_keys"`
	BitsPerKey   float64 `json:"bits_per_key"`
	MaxRange     float64 `json:"max_range"`
	Shards       int     `json:"shards"`
}

type v1ShardEntry struct {
	File   string `json:"file"`
	Bytes  int64  `json:"bytes"`
	CRC32C uint32 `json:"crc32c"`
}

type v1Manifest struct {
	FormatVersion int            `json:"format_version"`
	Name          string         `json:"name"`
	Seq           uint64         `json:"seq"`
	CreatedUnix   int64          `json:"created_unix_nano"`
	Options       v1Options      `json:"options"`
	InsertedKeys  uint64         `json:"inserted_keys"`
	Shards        []v1ShardEntry `json:"shards"`
}

// fixtureKeys is the deterministic insert set; the restore test probes the
// same sequence.
func fixtureKeys() []uint64 {
	keys := make([]uint64, 1024)
	for i := range keys {
		keys[i] = uint64(i) * 0x9e3779b97f4a7c15 // spread across the keyspace
	}
	return keys
}

func main() {
	opt := server.FilterOptions{ExpectedKeys: 4096, BitsPerKey: 16, Shards: 2}
	f, err := server.NewSharded(opt)
	if err != nil {
		log.Fatal(err)
	}
	keys := fixtureKeys()
	f.InsertBatch(keys)

	snapDir := filepath.Join("internal", "server", "testdata", "golden-v1-store", "users", "snap-0000000001")
	if err := os.MkdirAll(snapDir, 0o755); err != nil {
		log.Fatal(err)
	}
	man := v1Manifest{
		FormatVersion: 1,
		Name:          "users",
		Seq:           1,
		CreatedUnix:   1753600000000000000, // fixed so regeneration is byte-stable
		Options: v1Options{
			ExpectedKeys: opt.ExpectedKeys,
			BitsPerKey:   opt.BitsPerKey,
			Shards:       opt.Shards,
		},
		InsertedKeys: uint64(len(keys)),
	}
	castagnoli := crc32.MakeTable(crc32.Castagnoli)
	for i := 0; i < f.NumShards(); i++ {
		blob, err := f.MarshalShard(i)
		if err != nil {
			log.Fatal(err)
		}
		file := filepath.Join(snapDir, "shard-000"+string(rune('0'+i))+".bin")
		if err := os.WriteFile(file, blob, 0o644); err != nil {
			log.Fatal(err)
		}
		man.Shards = append(man.Shards, v1ShardEntry{
			File:   filepath.Base(file),
			Bytes:  int64(len(blob)),
			CRC32C: crc32.Checksum(blob, castagnoli),
		})
	}
	body, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(snapDir, "manifest.json"), body, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote v1 fixture under %s", snapDir)
}
