// Package bloomrf provides bloomRF, a unified approximate-membership
// filter supporting both point and range queries over 64-bit keys, as
// introduced in "bloomRF: On Performing Range-Queries in Bloom-Filters
// with Piecewise-Monotone Hash-Functions and Prefix Hashing" (EDBT 2023).
//
// A bloomRF filter behaves like a Bloom filter — online inserts, no false
// negatives, tunable false-positive rate — but additionally answers
// "are there any keys in [lo, hi]?" in O(k) time independent of the range
// width, using prefix hashing (range information encoded in the key's hash
// code via dyadic intervals) and piecewise-monotone hash functions (PMHF,
// which keep adjacent prefixes adjacent in the bit array so interval runs
// are tested with single word accesses).
//
// Quick start:
//
//	f := bloomrf.New(1_000_000, 16)           // expected keys, bits/key
//	f.Insert(42)
//	f.MayContain(42)                          // true
//	f.MayContainRange(40, 100)                // true
//	f.MayContainRange(1_000, 2_000)           // false (almost surely)
//
// Hot loops should use the batch variants. InsertBatch and MayContainBatch
// return identical answers to single-key loops but run layer-major,
// amortizing per-layer setup and per-key hashing overheads (roughly 2×
// point-probe throughput on large batches; see BenchmarkBatchPointLookup);
// MayContainRangeBatch is an equivalent-answer convenience for symmetric
// call sites, with no per-range speedup:
//
//	keys := []uint64{42, 4711, 1_000_000}
//	f.InsertBatch(keys)
//	out := make([]bool, len(keys))
//	f.MayContainBatch(keys, out)
//
// For workloads with large range queries, use NewTuned, which runs the
// paper's §7 tuning advisor (variable level distances, replicated hash
// functions, memory segments and an exact top layer):
//
//	f, err := bloomrf.NewTuned(bloomrf.Options{
//		ExpectedKeys: 50_000_000,
//		BitsPerKey:   16,
//		MaxRange:     1e10,
//	})
//
// Floats, signed integers and strings are supported through monotone
// encodings (EncodeFloat64, EncodeInt64, EncodeStringRange), and two-
// attribute conjunctive filtering through MultiAttr. Filters serialize to
// compact blocks (MarshalBinary/Unmarshal) for use as SSTable filter
// blocks; see internal/lsm for a complete LSM integration, and
// internal/server plus cmd/bloomrfd for serving sharded filters over HTTP
// with durable snapshot/restore.
//
// All Filter and MultiAttr methods are safe for concurrent use without
// external locking: bloomRF is an online, parallel structure (paper
// Experiment 4), and inserts and probes go through atomic bit operations.
// MarshalBinary concurrent with inserts is also safe and never loses an
// insert that completed before the call (the happens-before order of the
// atomic bit writes matches the serialization order), but an insert still
// in flight may be captured partially — some of its layers' bits in the
// block, others not. Such a torn insert never produces a false negative
// for completed inserts, yet the block is not a point-in-time image.
// Callers that need insert-atomic snapshots must make inserts and
// MarshalBinary mutually exclusive; internal/server does exactly this with
// a per-shard reader–writer lock (inserts share the read side, so they
// still run in parallel; snapshotting a shard takes the write side), which
// is how the bloomrfd persistence layer guarantees consistent on-disk
// snapshots under live write traffic.
package bloomrf

import (
	"repro/internal/core"
)

// Filter is a bloomRF point-range filter. The zero value is not usable;
// construct with New, NewTuned or NewWithConfig.
type Filter struct {
	inner *core.Filter
}

// Options configures NewTuned, mirroring the paper's tuning advisor
// inputs.
type Options struct {
	// ExpectedKeys is n, the anticipated number of inserted keys.
	ExpectedKeys uint64
	// BitsPerKey is the space budget (total memory = n · BitsPerKey bits).
	BitsPerKey float64
	// MaxRange is the largest query-range size the filter is optimized
	// for. 0 tunes for point queries; basic filters handle up to ~2^14
	// regardless.
	MaxRange float64
	// PointWeight is the C of the advisor's weighted norm
	// fpr² = fpr_range² + C²·fpr_point²; 0 means 1. Raise it to privilege
	// point-query accuracy.
	PointWeight float64
}

// New returns a basic bloomRF sized for n keys at bitsPerKey bits of
// memory per key. Basic bloomRF is tuning-free and suited to query ranges
// up to about 2^14 (paper §5); use NewTuned for larger ranges.
func New(n uint64, bitsPerKey float64) *Filter {
	return &Filter{inner: core.NewBasic(n, bitsPerKey)}
}

// NewTuned runs the §7 tuning advisor and returns the recommended filter
// along with its predicted false-positive rates.
func NewTuned(opt Options) (*Filter, Tuning, error) {
	f, rep, err := core.NewTuned(core.TuneOptions{
		N:           opt.ExpectedKeys,
		BitsPerKey:  opt.BitsPerKey,
		MaxRange:    opt.MaxRange,
		PointWeight: opt.PointWeight,
	})
	if err != nil {
		return nil, Tuning{}, err
	}
	return &Filter{inner: f}, Tuning{
		ExactLevel:    rep.ExactLevel,
		PredictedFPR:  rep.PredictedFPR,
		RangeFPR:      rep.PredictedFPRm,
		PointFPR:      rep.PredictedFPRp,
		LevelDistance: rep.Config.Deltas,
	}, nil
}

// NewWithConfig builds a filter from an explicit low-level layout; most
// callers want New or NewTuned. See core.Config for the knobs.
func NewWithConfig(cfg core.Config) (*Filter, error) {
	f, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Filter{inner: f}, nil
}

// Tuning reports what the advisor chose.
type Tuning struct {
	// ExactLevel is the dyadic level stored as an exact bitmap.
	ExactLevel int
	// PredictedFPR is the weighted norm the advisor minimized.
	PredictedFPR float64
	// RangeFPR is the predicted maximum FPR over dyadic ranges ≤ MaxRange.
	RangeFPR float64
	// PointFPR is the predicted point-query FPR.
	PointFPR float64
	// LevelDistance is the chosen Δ vector (bottom-up).
	LevelDistance []int
}

// Insert adds a key. Safe for concurrent use.
func (f *Filter) Insert(x uint64) { f.inner.Insert(x) }

// MayContain reports whether x may have been inserted: false is
// definitive, true is correct with probability 1 − FPR.
func (f *Filter) MayContain(x uint64) bool { return f.inner.MayContain(x) }

// MayContainRange reports whether any key in [lo, hi] (inclusive, either
// order) may have been inserted. False is definitive.
func (f *Filter) MayContainRange(lo, hi uint64) bool { return f.inner.MayContainRange(lo, hi) }

// InsertFloat64 adds a float key through the order-preserving coding φ.
func (f *Filter) InsertFloat64(v float64) { f.inner.Insert(core.EncodeFloat64(v)) }

// MayContainFloat64 tests a float point.
func (f *Filter) MayContainFloat64(v float64) bool {
	return f.inner.MayContain(core.EncodeFloat64(v))
}

// MayContainFloat64Range tests a float range [lo, hi].
func (f *Filter) MayContainFloat64Range(lo, hi float64) bool {
	return f.inner.MayContainRange(core.EncodeFloat64(lo), core.EncodeFloat64(hi))
}

// InsertInt64 adds a signed integer through the order-preserving coding.
func (f *Filter) InsertInt64(v int64) { f.inner.Insert(core.EncodeInt64(v)) }

// MayContainInt64Range tests a signed range.
func (f *Filter) MayContainInt64Range(lo, hi int64) bool {
	return f.inner.MayContainRange(core.EncodeInt64(lo), core.EncodeInt64(hi))
}

// InsertString adds a string through the paper's §8 encoding: the first
// seven bytes order-exactly plus one hash byte of the remainder.
func (f *Filter) InsertString(s string) { f.inner.Insert(core.EncodeStringPoint(s)) }

// MayContainString tests a string point (prefix+hash granularity).
func (f *Filter) MayContainString(s string) bool {
	return f.inner.MayContain(core.EncodeStringPoint(s))
}

// MayContainStringRange tests a string range at 7-byte-prefix granularity.
func (f *Filter) MayContainStringRange(lo, hi string) bool {
	return f.inner.MayContainRange(core.EncodeStringRange(lo, hi))
}

// SizeBits returns the filter's memory footprint in bits.
func (f *Filter) SizeBits() uint64 { return f.inner.SizeBits() }

// K returns the number of probabilistic layers (hash functions).
func (f *Filter) K() int { return f.inner.K() }

// MarshalBinary serializes the filter to a compact block.
func (f *Filter) MarshalBinary() ([]byte, error) { return f.inner.MarshalBinary() }

// Unmarshal reconstructs a filter serialized with MarshalBinary.
func Unmarshal(data []byte) (*Filter, error) {
	inner, err := core.UnmarshalFilter(data)
	if err != nil {
		return nil, err
	}
	return &Filter{inner: inner}, nil
}

// EncodeFloat64 exposes the monotone float coding φ of §8 for callers
// that manage raw uint64 keys themselves.
func EncodeFloat64(v float64) uint64 { return core.EncodeFloat64(v) }

// DecodeFloat64 inverts EncodeFloat64.
func DecodeFloat64(u uint64) float64 { return core.DecodeFloat64(u) }

// EncodeInt64 exposes the monotone signed-integer coding.
func EncodeInt64(v int64) uint64 { return core.EncodeInt64(v) }

// MultiAttr is the two-attribute conjunctive filter of §8: it answers
// predicates like A < 42 AND B = 4711 with one probe.
type MultiAttr struct {
	inner *core.MultiAttr
}

// MultiAttrOptions configures NewMultiAttr.
type MultiAttrOptions struct {
	// ExpectedKeys is the anticipated number of (A, B) tuples.
	ExpectedKeys uint64
	// BitsPerKey is the budget per tuple.
	BitsPerKey float64
	// MaxRange bounds range predicates (in reduced-precision units).
	MaxRange float64
	// BitsA and BitsB give the significant bits of each attribute;
	// values above 32 bits are monotonically reduced. 0 means 32.
	BitsA, BitsB int
}

// NewMultiAttr creates a two-attribute filter.
func NewMultiAttr(opt MultiAttrOptions) (*MultiAttr, error) {
	m, err := core.NewMultiAttr(core.MultiAttrOptions{
		N: opt.ExpectedKeys, BitsPerKey: opt.BitsPerKey, MaxRange: opt.MaxRange,
		BitsA: opt.BitsA, BitsB: opt.BitsB,
	})
	if err != nil {
		return nil, err
	}
	return &MultiAttr{inner: m}, nil
}

// Insert adds a tuple.
func (m *MultiAttr) Insert(a, b uint64) { m.inner.Insert(a, b) }

// MayContain tests A = a AND B = b.
func (m *MultiAttr) MayContain(a, b uint64) bool { return m.inner.MayContainPoint(a, b) }

// MayContainARange tests A ∈ [aLo, aHi] AND B = b.
func (m *MultiAttr) MayContainARange(aLo, aHi, b uint64) bool {
	return m.inner.MayContainARangeBEq(aLo, aHi, b)
}

// MayContainBRange tests A = a AND B ∈ [bLo, bHi].
func (m *MultiAttr) MayContainBRange(a, bLo, bHi uint64) bool {
	return m.inner.MayContainAEqBRange(a, bLo, bHi)
}

// SizeBits returns the footprint in bits.
func (m *MultiAttr) SizeBits() uint64 { return m.inner.SizeBits() }
