package bloomrf_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches the target of an inline markdown link: ](target).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsRelativeLinks walks the repo's markdown (README, ROADMAP, docs/)
// and checks that every relative link target exists, so renames and doc
// moves cannot silently strand cross-references. External URLs and pure
// anchors are skipped; a #fragment on a file link is stripped (anchor
// validity is not checked, only file existence). CI runs this as the docs
// link-check step.
func TestDocsRelativeLinks(t *testing.T) {
	files := []string{"README.md", "ROADMAP.md", "CHANGES.md"}
	docs, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docs...)
	if len(docs) == 0 {
		t.Fatal("no docs/*.md found — test running from the wrong directory?")
	}
	checked := 0
	for _, file := range files {
		body, err := os.ReadFile(file)
		if err != nil {
			if os.IsNotExist(err) {
				continue // optional top-level files
			}
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (resolved %s): %v", file, m[1], resolved, err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no relative links found — the matcher is broken or the docs lost their cross-references")
	}
	t.Logf("checked %d relative links across %d files", checked, len(files))
}
