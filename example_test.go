package bloomrf_test

import (
	"fmt"

	bloomrf "repro"
)

// The basic filter needs no tuning: size it for the expected keys and
// budget, insert online, and query points or ranges.
func Example() {
	f := bloomrf.New(100_000, 16)
	for _, k := range []uint64{42, 4711, 1_000_000} {
		f.Insert(k)
	}
	fmt.Println(f.MayContain(42))
	fmt.Println(f.MayContainRange(4000, 5000))     // contains 4711
	fmt.Println(f.MayContainRange(10_000, 20_000)) // empty
	// Output:
	// true
	// true
	// false
}

// NewTuned runs the paper's §7 advisor for workloads with large range
// queries; the report shows the chosen layout.
func ExampleNewTuned() {
	f, tuning, err := bloomrf.NewTuned(bloomrf.Options{
		ExpectedKeys: 1_000_000,
		BitsPerKey:   16,
		MaxRange:     1e9,
	})
	if err != nil {
		panic(err)
	}
	f.Insert(123_456_789)
	fmt.Println(f.MayContainRange(100_000_000, 200_000_000))
	fmt.Println(tuning.ExactLevel > 0, len(tuning.LevelDistance) > 0)
	// Output:
	// true
	// true true
}

// Floats are filtered through the order-preserving coding φ of §8.
func ExampleFilter_MayContainFloat64Range() {
	f := bloomrf.New(10_000, 18)
	f.InsertFloat64(-273.15)
	f.InsertFloat64(36.6)
	fmt.Println(f.MayContainFloat64Range(-300, -200))
	fmt.Println(f.MayContainFloat64Range(36.0, 37.0))
	// A float interval may span an enormous integer-code range (§1: a
	// width-1 double range can cover 2^61 codes); the basic filter answers
	// such probes conservatively — use NewTuned for wide-range workloads.
	fmt.Println(f.MayContainFloat64Range(0.5, 0.6))
	// Output:
	// true
	// true
	// false
}

// Two-attribute conjunctive predicates use one MultiAttr filter.
func ExampleMultiAttr() {
	m, err := bloomrf.NewMultiAttr(bloomrf.MultiAttrOptions{
		ExpectedKeys: 10_000,
		BitsPerKey:   20,
	})
	if err != nil {
		panic(err)
	}
	m.Insert(42, 4711)                            // (Run, ObjectID)
	fmt.Println(m.MayContainARange(0, 100, 4711)) // Run ≤ 100 AND ObjectID = 4711
	// Output:
	// true
}

// Filters serialize to compact blocks for use as SSTable filter blocks.
func ExampleUnmarshal() {
	f := bloomrf.New(1_000, 14)
	f.Insert(7)
	blob, _ := f.MarshalBinary()
	g, err := bloomrf.Unmarshal(blob)
	if err != nil {
		panic(err)
	}
	fmt.Println(g.MayContain(7))
	// Output:
	// true
}

// Batch calls return exactly the same answers as single-key loops but
// amortize per-layer work across the batch — use them on hot paths.
func ExampleFilter_InsertBatch() {
	f := bloomrf.New(100_000, 16)
	f.InsertBatch([]uint64{42, 4711, 1_000_000})
	fmt.Println(f.MayContain(4711))
	// Output:
	// true
}

// MayContainBatch writes one verdict per key into a caller-provided slice,
// so steady-state query loops allocate nothing.
func ExampleFilter_MayContainBatch() {
	f := bloomrf.New(100_000, 16)
	f.InsertBatch([]uint64{42, 4711, 1_000_000})
	queries := []uint64{42, 99, 4711}
	out := make([]bool, len(queries))
	f.MayContainBatch(queries, out)
	fmt.Println(out)
	// Output:
	// [true false true]
}

// MayContainRangeBatch answers many [lo, hi] probes in one call; false is
// definitive for each range, as with MayContainRange.
func ExampleFilter_MayContainRangeBatch() {
	f := bloomrf.New(100_000, 16)
	f.InsertBatch([]uint64{42, 4711, 1_000_000})
	ranges := [][2]uint64{{40, 100}, {10_000, 20_000}}
	out := make([]bool, len(ranges))
	f.MayContainRangeBatch(ranges, out)
	fmt.Println(out)
	// Output:
	// [true false]
}
