package main

// Serving-layer logging. Everything bloomrfd prints while serving flows
// through one leveled slog logger: operator lines from main, the server
// package's structured key=value lines (Config.Logf), snapshotter and
// follower diagnostics, and the slow-request JSON lines from the phase
// tracer. -log-format selects the rendering (human text, or one JSON
// object per line for log shippers); levels are sniffed from the
// key=value convention the server package already emits, so the server
// stays free of any logging dependency.

import (
	"fmt"
	"log/slog"
	"os"
	"strings"
)

// appLogger adapts the Printf-shaped logf hooks the server package
// exposes onto a leveled slog.Logger.
type appLogger struct {
	sl *slog.Logger
}

// newAppLogger builds the process logger for -log-format (text or json).
func newAppLogger(format string) (*appLogger, error) {
	var h slog.Handler
	switch format {
	case "text":
		h = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return nil, fmt.Errorf("-log-format %q must be \"text\" or \"json\"", format)
	}
	return &appLogger{sl: slog.New(h)}, nil
}

// logf renders one line at a level sniffed from the message: the server
// package marks its structured lines with warn=/err= keys, and failure
// text from the persistence and replication paths reads "... failed: <err>".
// Plain operational lines (including counters like "0 failed") land at
// info.
func (l *appLogger) logf(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	switch {
	case strings.Contains(msg, "err=") || strings.Contains(msg, "failed:") || strings.Contains(msg, "error"):
		l.sl.Error(msg)
	case strings.Contains(msg, "warn="):
		l.sl.Warn(msg)
	default:
		l.sl.Info(msg)
	}
}

// fatalf logs at error level and exits, replacing log.Fatalf so startup
// failures use the selected format too.
func (l *appLogger) fatalf(format string, args ...any) {
	l.sl.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
