package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// TestDrainServerLogsTimeout pins the shutdown-timeout satellite: a drain
// that expires with a request still in flight must say so out loud and
// return promptly (so the final snapshot still runs), not swallow the
// DeadlineExceeded and leave the operator guessing.
func TestDrainServerLogsTimeout(t *testing.T) {
	release := make(chan struct{})
	handlerDone := make(chan struct{})
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(handlerDone)
		<-release // hang until the test lets go
	})}
	defer close(release)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	// Park one request inside the handler so the drain cannot complete.
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/")
		if err == nil {
			resp.Body.Close()
		}
	}()
	select {
	case <-handlerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the handler")
	}

	var logs []string
	start := time.Now()
	drainServer(srv, 50*time.Millisecond, func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	})
	if took := time.Since(start); took > 3*time.Second {
		t.Fatalf("drainServer took %s with a hung request, want prompt return", took)
	}
	joined := strings.Join(logs, "\n")
	if !strings.Contains(joined, "drain timed out") || !strings.Contains(joined, "still in flight") {
		t.Fatalf("timeout drain logged %q, want an explicit drain-timeout warning", joined)
	}
	if !strings.Contains(joined, "final snapshot still runs") {
		t.Fatalf("warning %q does not reassure that shutdown continues", joined)
	}
}

// TestDrainServerCleanIsQuiet: a drain with nothing in flight completes
// silently — the warning is reserved for the pathological case.
func TestDrainServerCleanIsQuiet(t *testing.T) {
	srv := &http.Server{Handler: http.NewServeMux()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	var logs []string
	drainServer(srv, time.Second, func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	})
	if len(logs) != 0 {
		t.Fatalf("clean drain logged %q, want silence", logs)
	}
}

// writeProbeFile drops n sequential keys into a temp probe file.
func writeProbeFile(t *testing.T, n int) string {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%d\n", i)
	}
	path := filepath.Join(t.TempDir(), "keys.txt")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestOpenLoopProbe drives the open-loop generator against a real API for
// both codecs and checks the JSON report: the schedule was honored, every
// request succeeded, and the percentile fields are populated and ordered.
func TestOpenLoopProbe(t *testing.T) {
	reg := server.NewRegistry()
	if _, err := reg.Create("probe", server.FilterOptions{ExpectedKeys: 10_000}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.NewAPI(reg))
	defer ts.Close()
	file := writeProbeFile(t, 1000)

	for _, codec := range []string{"json", "binary"} {
		outPath := filepath.Join(t.TempDir(), "probe.json")
		err := runProbe(probeOptions{
			File: file, URL: ts.URL, Filter: "probe", Op: "query",
			Codec: codec, Batch: 100, Rounds: 1,
			TargetQPS: 200, Duration: 300 * time.Millisecond, Out: outPath,
		})
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		data, err := os.ReadFile(outPath)
		if err != nil {
			t.Fatal(err)
		}
		var res openLoopResult
		if err := json.Unmarshal(data, &res); err != nil {
			t.Fatalf("%s: report not JSON: %v in %q", codec, err, data)
		}
		if res.Codec != codec || res.Op != "query" || res.TargetQPS != 200 {
			t.Fatalf("%s: report misidentifies the run: %+v", codec, res)
		}
		if res.Requests < 50 || res.OK != res.Requests || res.Rejected != 0 || res.Errors != 0 {
			t.Fatalf("%s: counts off (expected every scheduled request to succeed): %+v", codec, res)
		}
		if res.P50Ms <= 0 || res.P99Ms < res.P50Ms || res.P999Ms < res.P99Ms || res.MaxMs < res.P999Ms {
			t.Fatalf("%s: percentiles empty or unordered: %+v", codec, res)
		}
		if res.AchievedQPS <= 0 {
			t.Fatalf("%s: achieved QPS not reported: %+v", codec, res)
		}
	}
}

// TestOpenLoopProbeCountsShed pins the probe's overload accounting: 429s
// are rejected work the admission controller shed on purpose, not errors,
// and an all-shed run is still a successful measurement.
func TestOpenLoopProbeCountsShed(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"saturated"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()
	file := writeProbeFile(t, 100)

	outPath := filepath.Join(t.TempDir(), "probe.json")
	err := runProbe(probeOptions{
		File: file, URL: ts.URL, Filter: "probe", Op: "query",
		Codec: "binary", Batch: 10, Rounds: 1,
		TargetQPS: 100, Duration: 200 * time.Millisecond, Out: outPath,
	})
	if err != nil {
		t.Fatalf("all-shed run must not be an error: %v", err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var res openLoopResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.OK != 0 || res.Errors != 0 || res.Rejected != res.Requests {
		t.Fatalf("shed accounting off: %+v", res)
	}
}

// TestOpenLoopCoordinatedOmission pins the methodology itself: with a
// server that stalls every request far longer than the dispatch interval,
// a closed-loop client would send ~duration/stall requests; the open-loop
// schedule must keep sending and report a p50 that includes the stall.
func TestOpenLoopCoordinatedOmission(t *testing.T) {
	const stall = 100 * time.Millisecond
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(stall)
		w.Write([]byte(`{"results":[]}`))
	}))
	defer ts.Close()
	file := writeProbeFile(t, 100)

	outPath := filepath.Join(t.TempDir(), "probe.json")
	err := runProbe(probeOptions{
		File: file, URL: ts.URL, Filter: "probe", Op: "query",
		Codec: "binary", Batch: 10, Rounds: 1,
		TargetQPS: 100, Duration: 300 * time.Millisecond, Out: outPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var res openLoopResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	// Closed-loop at a 100ms stall would manage ~3 requests in 300ms; the
	// open-loop schedule fires ~30 regardless of response latency.
	if res.Requests < 20 {
		t.Fatalf("schedule collapsed to %d requests under a stalling server (coordinated omission)", res.Requests)
	}
	if res.P50Ms < float64(stall/time.Millisecond) {
		t.Fatalf("p50 %.1fms below the server stall %s — latencies not measured from scheduled time", res.P50Ms, stall)
	}
}
