package main

// -lsm-bench mode: run the paper's end-to-end LSM scenario — YCSB mixes
// over the compaction-disabled LSM store, one pass per filter backend —
// and write the per-backend IO/FPR comparison as JSON. This is the
// runnable form of the paper's Table/Fig. 9 result; scripts/lsm_bench.sh
// wraps it and CI runs it with -lsm-bench-assert as a regression gate.

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/harness"
)

// lsmBenchOptions carries the -lsm-bench-* flag values.
type lsmBenchOptions struct {
	Out    string
	Keys   int
	Ops    int
	Tables int
	Bits   float64
	Mixes  string
	Seed   int64
	Assert bool
}

// runLSMBench executes the YCSB comparison and writes the report. With
// Assert set it exits non-zero unless bloomRF reads no more data blocks
// than classic Bloom on the range-heavy mix — the paper's core claim.
func runLSMBench(o lsmBenchOptions) error {
	var mixes []string
	for _, m := range strings.Split(o.Mixes, ",") {
		if m = strings.TrimSpace(m); m != "" {
			mixes = append(mixes, m)
		}
	}
	rep, err := harness.RunYCSB(harness.YCSBOptions{
		NumKeys: o.Keys, NumOps: o.Ops, NumTables: o.Tables,
		BitsPerKey: o.Bits, Mixes: mixes, Seed: o.Seed,
	})
	if err != nil {
		return err
	}
	for _, mr := range rep.Mixes {
		for _, b := range mr.Backends {
			log.Printf("lsm-bench: mix=%-5s backend=%-7s data_blocks_read=%-8d fpr=%.4f io_saved_vs_bloom=%+.1f%% "+
				"phases(probe/deser/io)=%.0f%%/%.0f%%/%.0f%% p50=%.1fus p99=%.1fus",
				mr.Mix, b.Backend, b.DataBlocksRead, b.FalsePositiveRate, b.IOSavedVsBloomPct,
				100*b.Phases.FilterProbeFraction, 100*b.Phases.DeserializeFraction, 100*b.Phases.IOWaitFraction,
				b.LatencyP50Us, b.LatencyP99Us)
		}
	}
	if err := rep.WriteJSON(o.Out); err != nil {
		return err
	}
	log.Printf("lsm-bench: report written to %s", o.Out)
	if o.Assert {
		brf := rep.Backend("range", "bloomrf")
		bl := rep.Backend("range", "bloom")
		if brf == nil || bl == nil {
			return fmt.Errorf("assert: report lacks bloomrf/bloom results for the range mix (mixes must include \"range\")")
		}
		if brf.DataBlocksRead > bl.DataBlocksRead {
			return fmt.Errorf("assert: bloomRF read %d data blocks on the range mix, Bloom %d — expected bloomRF ≤ Bloom",
				brf.DataBlocksRead, bl.DataBlocksRead)
		}
		log.Printf("lsm-bench: assert ok — bloomRF %d ≤ Bloom %d data blocks on the range mix",
			brf.DataBlocksRead, bl.DataBlocksRead)
	}
	return nil
}
