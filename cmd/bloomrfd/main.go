// Command bloomrfd serves named, sharded bloomRF filters over an HTTP JSON
// API: create filters, insert keys and run point/range queries (single or
// batch) from any HTTP client. See docs/server.md for the API reference.
//
// Usage:
//
//	bloomrfd -addr :8077 -data-dir /var/lib/bloomrfd -snapshot-interval 1m
//
// Quick check once it is running:
//
//	curl -s -XPOST localhost:8077/v1/filters \
//	    -d '{"name":"users","expected_keys":1000000,"bits_per_key":16}'
//	curl -s -XPOST localhost:8077/v1/filters/users/insert -d '{"keys":[42,4711]}'
//	curl -s -XPOST localhost:8077/v1/filters/users/query-range -d '{"lo":4000,"hi":5000}'
//	curl -s -XPOST localhost:8077/v1/filters/users/snapshot -d ''
//
// With -data-dir set, every filter is snapshotted to disk — on demand via
// the snapshot endpoint, every -snapshot-interval in the background, and
// once more on graceful shutdown — and the whole registry is restored from
// the newest intact snapshots at startup. Without it, filters live in
// memory only. The server drains in-flight requests on SIGINT/SIGTERM
// before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second,
		"how long to wait for in-flight requests on shutdown")
	dataDir := flag.String("data-dir", "",
		"directory for durable filter snapshots; empty disables persistence")
	snapshotInterval := flag.Duration("snapshot-interval", time.Minute,
		"how often to snapshot all filters in the background (requires -data-dir; 0 disables)")
	partitioning := flag.String("partitioning", string(server.PartitionHash),
		`default partitioning for creates that omit "partitioning": hash (uniform load) or range (range queries probe one shard)`)
	flag.Parse()

	defaultPart := server.Partitioning(*partitioning)
	if !defaultPart.Valid() {
		log.Fatalf("bloomrfd: -partitioning %q must be %q or %q",
			*partitioning, server.PartitionHash, server.PartitionRange)
	}

	reg := server.NewRegistry()
	var store *server.Store
	var snapshotter *server.Snapshotter
	if *dataDir != "" {
		var err error
		store, err = server.OpenStore(*dataDir)
		if err != nil {
			log.Fatalf("bloomrfd: %v", err)
		}
		restored, skipped, err := store.RestoreAll(reg)
		if err != nil {
			log.Fatalf("bloomrfd: restoring filters: %v", err)
		}
		for name, serr := range skipped {
			log.Printf("bloomrfd: skipping filter %q: %v", name, serr)
		}
		log.Printf("bloomrfd: restored %d filter(s) from %s", len(restored), *dataDir)
		if *snapshotInterval > 0 {
			snapshotter = server.NewSnapshotter(reg, store, *snapshotInterval)
			snapshotter.Start()
		}
	}

	api := server.NewConfiguredAPI(reg, store, server.Config{DefaultPartitioning: defaultPart})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("bloomrfd listening on %s", *addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatalf("bloomrfd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("bloomrfd: shutting down (draining for up to %s)", *shutdownTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("bloomrfd: shutdown: %v", err)
	}
	if snapshotter != nil {
		snapshotter.Stop()
	}
	if store != nil {
		ok, failed := server.SnapshotAll(reg, store, log.Printf)
		log.Printf("bloomrfd: final snapshot: %d ok, %d failed", ok, failed)
	}
	log.Printf("bloomrfd: bye")
}
