// Command bloomrfd serves named, sharded bloomRF filters over an HTTP JSON
// API: create filters, insert keys and run point/range queries (single or
// batch) from any HTTP client. See docs/server.md for the API reference.
//
// Usage:
//
//	bloomrfd -addr :8077
//
// Quick check once it is running:
//
//	curl -s -XPOST localhost:8077/v1/filters \
//	    -d '{"name":"users","expected_keys":1000000,"bits_per_key":16}'
//	curl -s -XPOST localhost:8077/v1/filters/users/insert -d '{"keys":[42,4711]}'
//	curl -s -XPOST localhost:8077/v1/filters/users/query-range -d '{"lo":4000,"hi":5000}'
//
// The server drains in-flight requests on SIGINT/SIGTERM before exiting.
// Filters live in memory only; persistence is a non-goal of this daemon
// (filters marshal compactly via the library API if a caller needs that).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second,
		"how long to wait for in-flight requests on shutdown")
	flag.Parse()

	api := server.NewAPI(server.NewRegistry())
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("bloomrfd listening on %s", *addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatalf("bloomrfd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("bloomrfd: shutting down (draining for up to %s)", *shutdownTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("bloomrfd: shutdown: %v", err)
	}
	log.Printf("bloomrfd: bye")
}
