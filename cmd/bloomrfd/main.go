// Command bloomrfd serves named, sharded bloomRF filters over an HTTP JSON
// API: create filters, insert keys and run point/range queries (single or
// batch) from any HTTP client. See docs/server.md for the API reference and
// docs/replication.md for durability and standby setup.
//
// Usage:
//
//	bloomrfd -addr :8077 -data-dir /var/lib/bloomrfd -snapshot-interval 1m
//
// Quick check once it is running:
//
//	curl -s -XPOST localhost:8077/v1/filters \
//	    -d '{"name":"users","expected_keys":1000000,"bits_per_key":16}'
//	curl -s -XPOST localhost:8077/v1/filters/users/insert -d '{"keys":[42,4711]}'
//	curl -s -XPOST localhost:8077/v1/filters/users/query-range -d '{"lo":4000,"hi":5000}'
//	curl -s -XPOST localhost:8077/v1/filters/users/snapshot -d ''
//
// With -data-dir set, every mutation is committed to a write-ahead log
// (fsync policy under -wal-sync) and every filter is snapshotted to disk —
// on demand via the snapshot endpoint, every -snapshot-interval in the
// background, and once more on graceful shutdown. Startup restores the
// newest intact snapshots and replays the WAL tail on top, so an unclean
// crash loses at most the un-fsynced log tail. Without -data-dir, filters
// live in memory only.
//
// With -follow set, bloomrfd runs as a read-only warm standby instead: it
// bootstraps from the primary's replication stream, tails the primary's
// WAL, answers queries from the replicated state, and rejects mutations
// with 403. Replication lag is visible in /metrics and
// GET /v1/replication/status. When the primary runs with -auth-token, the
// standby presents the same token on the stream.
//
// Adding -data-dir alongside -follow gives the standby a promotion target:
// POST /v1/replication/promote turns it into a writable primary at a bumped
// epoch, seeding a fresh WAL and snapshots in -data-dir, and a restarted
// old primary is fenced off by the epoch handshake (docs/replication.md).
// -replication-heartbeat-timeout surfaces primary_unreachable when the
// stream goes silent, and -auto-promote (off by default) promotes a fully
// caught-up standby automatically once that timeout expires.
//
// With -probe-file set, bloomrfd is a load-generation client instead of a
// server: it reads keys (or "lo hi" ranges) from the file and fires them
// at -probe-url in batches, over the JSON or the binary wire codec, and
// reports end-to-end throughput (see probe.go and docs/performance.md).
// Adding -probe-target-qps switches the probe to an open-loop schedule
// that measures tail latency without coordinated omission (probe_openloop.go).
//
// -max-inflight-batches bounds how many batch requests the server serves
// concurrently; excess load is shed with 429 + Retry-After instead of
// queueing without bound, which keeps tail latency flat under overload.
//
// -pprof serves net/http/pprof on a loopback-only listener for hot-path
// diagnosis; the server drains in-flight requests on SIGINT/SIGTERM
// before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second,
		"how long to wait for in-flight requests on shutdown")
	dataDir := flag.String("data-dir", "",
		"directory for durable state (snapshots + write-ahead log); empty disables persistence")
	snapshotInterval := flag.Duration("snapshot-interval", time.Minute,
		"how often to snapshot all filters in the background (requires -data-dir; 0 disables)")
	partitioning := flag.String("partitioning", string(server.PartitionHash),
		`default partitioning for creates that omit "partitioning": hash (uniform load) or range (range queries probe one shard)`)
	walSync := flag.String("wal-sync", string(wal.SyncInterval),
		"WAL fsync policy: always (no acked write is ever lost), interval (fsync every -wal-sync-interval), none (OS decides)")
	walSyncInterval := flag.Duration("wal-sync-interval", wal.DefaultSyncInterval,
		"fsync period under -wal-sync=interval; an unclean crash loses at most this much acked data")
	walSegmentBytes := flag.Int64("wal-segment-bytes", wal.DefaultSegmentBytes,
		"rotate WAL segments at this size; old segments are truncated once snapshots cover them")
	authToken := flag.String("auth-token", "",
		"bearer token required on mutating endpoints (create/insert/snapshot/delete) and the replication stream; empty leaves them open; $BLOOMRFD_AUTH_TOKEN is used when the flag is unset; with -follow or -probe-file, also the credential presented to the target server")
	pprofAddr := flag.String("pprof", "",
		"serve net/http/pprof on this loopback-only address (e.g. 127.0.0.1:6060) for hot-path diagnosis; empty disables")
	skewThreshold := flag.Float64("skew-alert-threshold", 2.0,
		"raise bloomrfd_filter_skew_alert and log a warning when a range-partitioned filter's key_skew exceeds this (0 disables)")
	autoSplitThreshold := flag.Float64("auto-split-skew-threshold", 0,
		"act on skew instead of just alerting: split a range-partitioned filter's hottest span whenever its key_skew exceeds this after an insert (0 disables)")
	maxInflight := flag.Int("max-inflight-batches", 0,
		"admission control: bound concurrently served batch requests (insert/query/query-range); beyond it the server sheds load with 429 + Retry-After instead of queueing; 0 disables")
	logFormat := flag.String("log-format", "text",
		"serving-mode log rendering: text (human-readable key=value) or json (one object per line, for log shippers)")
	slowReqThreshold := flag.Duration("slow-request-threshold", 100*time.Millisecond,
		"emit one structured slow-request log line (full per-phase time breakdown, rate-limited to 1/s per filter) for any request slower than this; 0 disables")
	follow := flag.String("follow", "",
		"run as a read-only warm standby of the bloomrfd primary at this URL (e.g. http://primary:8077); add -data-dir to arm POST /v1/replication/promote")
	hbTimeout := flag.Duration("replication-heartbeat-timeout", 0,
		"with -follow: report primary_unreachable in /v1/replication/status and /metrics when no stream frame has arrived within this window (0 disables); also the detection window for -auto-promote")
	autoPromote := flag.Bool("auto-promote", false,
		"with -follow, -data-dir and -replication-heartbeat-timeout: promote this standby to a writable primary automatically once the primary has been unreachable past the timeout and the standby is fully caught up (never promotes over known lag)")
	stepDown := flag.Bool("step-down-on-higher-epoch", true,
		"with -follow: when the primary announces a higher promotion epoch, discard local stream state and re-bootstrap from the new primary; =false exits the stream loop with a terminal error instead")
	probeFile := flag.String("probe-file", "",
		"run as a load-generation client instead of a server: read keys (one per line) or ranges (\"lo hi\" per line) from this file and fire them at -probe-url in batches")
	probeURL := flag.String("probe-url", "http://127.0.0.1:8077",
		"target server for -probe-file")
	probeFilter := flag.String("probe-filter", "probe",
		"filter name -probe-file operates on")
	probeOp := flag.String("probe-op", "query",
		"operation -probe-file performs: insert, query, or query-range")
	probeCodec := flag.String("probe-codec", "binary",
		"wire codec for -probe-file: binary (application/x-bloomrf-batch) or json")
	probeBatch := flag.Int("probe-batch", 8192,
		"items per request for -probe-file")
	probeRounds := flag.Int("probe-rounds", 1,
		"how many passes -probe-file makes over the file")
	probeTargetQPS := flag.Float64("probe-target-qps", 0,
		"open-loop mode for -probe-file: fire requests on a fixed schedule at this rate (requests/s) regardless of response latency, measuring each latency from its scheduled send time (coordinated-omission-safe); 0 keeps the closed-loop rounds mode")
	probeDuration := flag.Duration("probe-duration", 10*time.Second,
		"how long an open-loop probe run (-probe-target-qps > 0) fires for")
	probeOut := flag.String("probe-out", "",
		"append the open-loop probe result as one JSON line to this file; empty prints to stdout only")
	lsmBench := flag.Bool("lsm-bench", false,
		"run the YCSB-driven LSM filter comparison (the paper's end-to-end scenario) instead of serving, write the report and exit")
	lsmBenchOut := flag.String("lsm-bench-out", "BENCH_PR6.json",
		"output path for the -lsm-bench JSON report")
	lsmBenchKeys := flag.Int("lsm-bench-keys", 200_000,
		"dataset size for -lsm-bench")
	lsmBenchOps := flag.Int("lsm-bench-ops", 20_000,
		"operations per mix and backend for -lsm-bench")
	lsmBenchTables := flag.Int("lsm-bench-tables", 25,
		"L0 SSTable count for -lsm-bench (paper: 25)")
	lsmBenchBits := flag.Float64("lsm-bench-bits", 16,
		"filter bits per key for -lsm-bench")
	lsmBenchMixes := flag.String("lsm-bench-mixes", "A,C,E,range",
		"comma-separated YCSB mixes for -lsm-bench (A-F, range)")
	lsmBenchSeed := flag.Int64("lsm-bench-seed", 42,
		"workload seed for -lsm-bench")
	lsmBenchAssert := flag.Bool("lsm-bench-assert", false,
		"with -lsm-bench: exit non-zero unless bloomRF reads ≤ Bloom's data blocks on the range mix")
	flag.Parse()

	defaultPart := server.Partitioning(*partitioning)
	if !defaultPart.Valid() {
		log.Fatalf("bloomrfd: -partitioning %q must be %q or %q",
			*partitioning, server.PartitionHash, server.PartitionRange)
	}
	syncPolicy := wal.SyncPolicy(*walSync)
	if !syncPolicy.Valid() {
		log.Fatalf("bloomrfd: -wal-sync %q must be %q, %q or %q",
			*walSync, wal.SyncAlways, wal.SyncInterval, wal.SyncNone)
	}
	token := *authToken
	if token == "" {
		token = os.Getenv("BLOOMRFD_AUTH_TOKEN")
	}

	if *lsmBench {
		// Benchmark mode: reproduce the paper's LSM scenario, then exit.
		if err := runLSMBench(lsmBenchOptions{
			Out: *lsmBenchOut, Keys: *lsmBenchKeys, Ops: *lsmBenchOps,
			Tables: *lsmBenchTables, Bits: *lsmBenchBits,
			Mixes: *lsmBenchMixes, Seed: *lsmBenchSeed, Assert: *lsmBenchAssert,
		}); err != nil {
			log.Fatalf("bloomrfd: lsm-bench: %v", err)
		}
		return
	}

	if *probeFile != "" {
		// Client mode: generate load against a running bloomrfd, then exit.
		if err := runProbe(probeOptions{
			File: *probeFile, URL: *probeURL, Filter: *probeFilter,
			Op: *probeOp, Codec: *probeCodec, Batch: *probeBatch,
			Rounds: *probeRounds, AuthToken: token,
			TargetQPS: *probeTargetQPS, Duration: *probeDuration, Out: *probeOut,
		}); err != nil {
			log.Fatalf("bloomrfd: probe: %v", err)
		}
		return
	}

	// Serving mode from here on: one leveled structured logger owns every
	// line — main's operational messages, the server package's Logf hooks,
	// snapshotter/follower diagnostics, slow-request JSON lines.
	logger, err := newAppLogger(*logFormat)
	if err != nil {
		log.Fatalf("bloomrfd: %v", err)
	}

	if *pprofAddr != "" {
		startPprof(*pprofAddr)
	}

	cfg := server.Config{
		DefaultPartitioning:    defaultPart,
		AuthToken:              token,
		SkewAlertThreshold:     *skewThreshold,
		AutoSplitSkewThreshold: *autoSplitThreshold,
		MaxInflightBatches:     *maxInflight,
		SlowRequestThreshold:   *slowReqThreshold,
		Logf:                   logger.logf,
	}
	reg := server.NewRegistry()
	var (
		store       *server.Store
		wlog        *wal.Log
		snapshotter *server.Snapshotter
		follower    *server.Follower
	)

	switch {
	case *follow != "":
		// Warm standby: the registry's state is owned by the primary's
		// stream. A -data-dir here is NOT recovered from — it is the
		// promotion target: the store and WAL options are held idle until
		// POST /v1/replication/promote seeds them at the bumped epoch.
		if *autoPromote && *dataDir == "" {
			logger.fatalf("bloomrfd: -auto-promote requires -data-dir (the promotion target) alongside -follow")
		}
		if *autoPromote && *hbTimeout <= 0 {
			logger.fatalf("bloomrfd: -auto-promote requires -replication-heartbeat-timeout > 0 (the detection window)")
		}
		var err error
		follower, err = server.NewFollower(*follow, reg, logger.logf)
		if err != nil {
			logger.fatalf("bloomrfd: %v", err)
		}
		// The primary's stream is token-gated whenever the primary runs
		// with -auth-token; present the same credential.
		follower.WithAuthToken(token).WithHeartbeatTimeout(*hbTimeout).WithStepDown(*stepDown)
		cfg.ReadOnly = true
		cfg.Replication = follower.Status
		cfg.ReplicationLag = follower.LagSnapshot
		cfg.HeartbeatTimeout = *hbTimeout
		if *dataDir != "" {
			store, err = server.OpenStore(filepath.Join(*dataDir, "snapshots"))
			if err != nil {
				logger.fatalf("bloomrfd: %v", err)
			}
			walOpts := wal.Options{
				Dir:          filepath.Join(*dataDir, "wal"),
				Policy:       syncPolicy,
				SyncInterval: *walSyncInterval,
				SegmentBytes: *walSegmentBytes,
			}
			// A fenced-then-restarted old primary must announce the epoch
			// it once served at, or a stale primary could bootstrap it.
			recovered, err := server.RecoverEpoch(store, walOpts)
			if err != nil {
				logger.fatalf("bloomrfd: recovering promotion epoch: %v", err)
			}
			follower.WithEpoch(recovered)
			cfg.Promotion = &server.PromotionConfig{
				Store:            store,
				WALOptions:       walOpts,
				SnapshotInterval: *snapshotInterval,
				Follower:         follower,
				RecoveredEpoch:   recovered,
			}
			cfg.AutoPromote = *autoPromote
		}

	case *dataDir != "":
		var err error
		store, err = server.OpenStore(filepath.Join(*dataDir, "snapshots"))
		if err != nil {
			logger.fatalf("bloomrfd: %v", err)
		}
		wlog, err = wal.Open(wal.Options{
			Dir:          filepath.Join(*dataDir, "wal"),
			Policy:       syncPolicy,
			SyncInterval: *walSyncInterval,
			SegmentBytes: *walSegmentBytes,
		})
		if err != nil {
			logger.fatalf("bloomrfd: opening WAL: %v", err)
		}
		store.SetWALSource(wlog)
		stats, err := server.Recover(store, wlog, reg, logger.logf)
		if err != nil {
			logger.fatalf("bloomrfd: recovery: %v", err)
		}
		// A primary that predates any failover serves at epoch 1; one that
		// was promoted in a previous life resumes at its recovered epoch.
		epoch := stats.Epoch
		if epoch == 0 {
			epoch = 1
		}
		cfg.Epoch = epoch
		store.SetEpochSource(func() uint64 { return epoch })
		cfg.WAL = wlog
		if *snapshotInterval > 0 {
			snapshotter = server.NewSnapshotter(reg, store, *snapshotInterval).WithWAL(wlog).WithLogf(logger.logf)
			snapshotter.Start()
		}
	}

	api := server.NewConfiguredAPI(reg, store, cfg)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if follower != nil {
		go func() {
			follower.Run(ctx)
			// A terminal stream error (e.g. the primary reports a higher
			// epoch and -step-down-on-higher-epoch=false) means this node
			// can never catch up again; shut down rather than serve
			// silently stale reads forever.
			if err := follower.TerminalErr(); err != nil {
				logger.logf("bloomrfd: follower: %v; shutting down", err)
				stop()
			}
		}()
		logger.logf("bloomrfd: following %s as a read-only standby", *follow)
	}

	errCh := make(chan error, 1)
	go func() {
		logger.logf("bloomrfd listening on %s", *addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		logger.fatalf("bloomrfd: %v", err)
	case <-ctx.Done():
	}

	logger.logf("bloomrfd: shutting down (draining for up to %s)", *shutdownTimeout)
	drainServer(srv, *shutdownTimeout, logger.logf)
	// api.Close tears down whatever a promotion built (snapshotter, final
	// snapshot, promoted WAL); a never-promoted server only closes its
	// signal channel. The boot-time snapshotter/store/WAL below belong to
	// main and are torn down here.
	api.Close()
	if snapshotter != nil {
		snapshotter.Stop()
	}
	if store != nil && wlog != nil {
		ok, failed := server.SnapshotAll(reg, store, logger.logf)
		logger.logf("bloomrfd: final snapshot: %d ok, %d failed", ok, failed)
		server.TruncateWAL(reg, wlog, logger.logf)
	}
	if wlog != nil {
		if err := wlog.Close(); err != nil {
			logger.logf("bloomrfd: closing WAL: %v", err)
		}
	}
	logger.logf("bloomrfd: bye")
}

// drainServer shuts srv down gracefully, waiting up to timeout for
// in-flight requests. A drain that times out used to be swallowed
// silently, leaving the operator to wonder why clients saw reset
// connections; now it is logged explicitly and the listener is force-closed
// so the shutdown sequence (final snapshot, WAL close) still runs promptly.
func drainServer(srv *http.Server, timeout time.Duration, logf func(string, ...any)) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := srv.Shutdown(ctx)
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded):
		logf("bloomrfd: shutdown: drain timed out after %s with requests still in flight; closing them forcibly (final snapshot still runs)", timeout)
		_ = srv.Close()
	default:
		logf("bloomrfd: shutdown: %v", err)
	}
}

// startPprof serves the net/http/pprof handlers on addr, refusing anything
// but a loopback address: the profiler exposes heap contents and stack
// traces, so it must never ride the service's public listener or any
// routable interface. The handlers are mounted on a private mux (not
// http.DefaultServeMux) so nothing else can accidentally join them.
func startPprof(addr string) {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		log.Fatalf("bloomrfd: -pprof %q must be host:port: %v", addr, err)
	}
	if ip := net.ParseIP(host); host != "localhost" && (ip == nil || !ip.IsLoopback()) {
		log.Fatalf("bloomrfd: -pprof %q must bind a loopback address (127.0.0.1, ::1 or localhost)", addr)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("bloomrfd: -pprof listen: %v", err)
	}
	log.Printf("bloomrfd: pprof on http://%s/debug/pprof/", ln.Addr())
	go func() {
		srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		if err := srv.Serve(ln); err != nil {
			log.Printf("bloomrfd: pprof server: %v", err)
		}
	}()
}
