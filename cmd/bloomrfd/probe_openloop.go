package main

// Open-loop load generation: -probe-target-qps fires requests on a fixed
// schedule — request i departs at start + i/qps whether or not earlier
// responses have arrived — and measures each latency from that *scheduled*
// time. A closed-loop client (send, wait, send) silently stops sending
// while the server stalls, so a one-second hiccup costs it one bad sample
// instead of the thousand requests that real, independent clients would
// have sent into the stall; that under-counting is coordinated omission,
// and the fixed schedule is the standard fix. 429 responses count as
// rejected (the admission controller doing its job), not as errors.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/wire"
)

// openLoopResult is the machine-readable record of one open-loop run, one
// JSON object per line in -probe-out (scripts/latency_bench.sh merges
// these into BENCH_PR7.json).
type openLoopResult struct {
	Op          string  `json:"op"`
	Codec       string  `json:"codec"`
	Filter      string  `json:"filter"`
	Batch       int     `json:"batch"`
	TargetQPS   float64 `json:"target_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	DurationS   float64 `json:"duration_s"`
	Requests    int     `json:"requests"`
	OK          int     `json:"ok"`
	Rejected    int     `json:"rejected"` // 429: shed by admission control
	Errors      int     `json:"errors"`
	P50Ms       float64 `json:"p50_ms"`
	P90Ms       float64 `json:"p90_ms"`
	P99Ms       float64 `json:"p99_ms"`
	P999Ms      float64 `json:"p999_ms"`
	MaxMs       float64 `json:"max_ms"`
}

// encodedBodies pre-builds the request payloads for every batch the run
// will cycle through. The closed-loop prober reuses one frame buffer,
// which an open-loop client cannot (its requests overlap in flight);
// encoding everything up front keeps the dispatch path allocation-light
// and the schedule honest.
func encodedBodies(o probeOptions, keys []uint64, ranges [][2]uint64) (bodies [][]byte, contentType string, err error) {
	appendRangeBatch := func(rs [][2]uint64) error {
		if o.Codec == "binary" {
			bodies = append(bodies, wire.AppendRangesRequest(nil, rs))
			return nil
		}
		js := make([]map[string]uint64, len(rs))
		for i, r := range rs {
			js[i] = map[string]uint64{"lo": r[0], "hi": r[1]}
		}
		b, err := json.Marshal(map[string]any{"ranges": js})
		if err != nil {
			return err
		}
		bodies = append(bodies, b)
		return nil
	}
	appendKeyBatch := func(ks []uint64) error {
		if o.Codec == "binary" {
			op := wire.OpQuery
			if o.Op == "insert" {
				op = wire.OpInsert
			}
			bodies = append(bodies, wire.AppendKeysRequest(nil, op, ks))
			return nil
		}
		b, err := json.Marshal(map[string]any{"keys": ks})
		if err != nil {
			return err
		}
		bodies = append(bodies, b)
		return nil
	}

	if o.Op == "query-range" {
		for lo := 0; lo < len(ranges); lo += o.Batch {
			if err := appendRangeBatch(ranges[lo:min(lo+o.Batch, len(ranges))]); err != nil {
				return nil, "", err
			}
		}
	} else {
		for lo := 0; lo < len(keys); lo += o.Batch {
			if err := appendKeyBatch(keys[lo:min(lo+o.Batch, len(keys))]); err != nil {
				return nil, "", err
			}
		}
	}
	contentType = "application/json"
	if o.Codec == "binary" {
		contentType = wire.ContentType
	}
	return bodies, contentType, nil
}

// runOpenLoop drives one open-loop session and writes the human summary to
// out (plus a JSON line to o.Out when set).
func runOpenLoop(o probeOptions, keys []uint64, ranges [][2]uint64, out io.Writer) error {
	if o.Duration <= 0 {
		return fmt.Errorf("-probe-duration %s must be > 0 in open-loop mode", o.Duration)
	}
	bodies, contentType, err := encodedBodies(o, keys, ranges)
	if err != nil {
		return err
	}
	endpoint := (&prober{opts: o}).endpoint()
	client := &http.Client{
		Timeout: 2 * o.Duration,
		// Open-loop fan-out overlaps many requests on purpose; don't let the
		// default per-host connection cap (2 idle) serialize them.
		Transport: &http.Transport{MaxIdleConnsPerHost: 256},
	}

	interval := time.Duration(float64(time.Second) / o.TargetQPS)
	total := int(o.Duration / interval)
	if total < 1 {
		total = 1
	}

	var (
		mu                    sync.Mutex
		latencies             []time.Duration // successful (200) requests only
		ok, rejected, errors_ int
		firstErr              error
		wg                    sync.WaitGroup
	)
	fire := func(i int, scheduled time.Time) {
		defer wg.Done()
		req, err := http.NewRequest("POST", endpoint, bytes.NewReader(bodies[i%len(bodies)]))
		if err != nil {
			mu.Lock()
			errors_++
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		req.Header.Set("Content-Type", contentType)
		if o.AuthToken != "" {
			req.Header.Set("Authorization", "Bearer "+o.AuthToken)
		}
		resp, err := client.Do(req)
		if err != nil {
			mu.Lock()
			errors_++
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		// Latency from the *scheduled* departure: a request the client had
		// to delay because the scheduler fell behind still charges the
		// server for the whole wait, exactly as an independent client would
		// have experienced it.
		lat := time.Since(scheduled)
		mu.Lock()
		switch {
		case resp.StatusCode == http.StatusOK:
			ok++
			latencies = append(latencies, lat)
		case resp.StatusCode == http.StatusTooManyRequests:
			rejected++
		default:
			errors_++
			if firstErr == nil {
				firstErr = fmt.Errorf("server answered %s", resp.Status)
			}
		}
		mu.Unlock()
	}

	start := time.Now()
	for i := 0; i < total; i++ {
		scheduled := start.Add(time.Duration(i) * interval)
		if d := time.Until(scheduled); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go fire(i, scheduled)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	pct := func(q float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(q*float64(len(latencies))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(latencies) {
			i = len(latencies) - 1
		}
		return float64(latencies[i]) / float64(time.Millisecond)
	}
	res := openLoopResult{
		Op: o.Op, Codec: o.Codec, Filter: o.Filter, Batch: o.Batch,
		TargetQPS:   o.TargetQPS,
		AchievedQPS: float64(ok) / elapsed.Seconds(),
		DurationS:   elapsed.Seconds(),
		Requests:    total, OK: ok, Rejected: rejected, Errors: errors_,
		P50Ms: pct(0.50), P90Ms: pct(0.90), P99Ms: pct(0.99), P999Ms: pct(0.999),
		MaxMs: pct(1.0),
	}
	fmt.Fprintf(out,
		"bloomrfd probe (open-loop): op=%s codec=%s target=%.0f req/s achieved=%.0f req/s requests=%d ok=%d rejected=%d errors=%d p50=%.2fms p99=%.2fms p999=%.2fms max=%.2fms\n",
		res.Op, res.Codec, res.TargetQPS, res.AchievedQPS, res.Requests,
		res.OK, res.Rejected, res.Errors, res.P50Ms, res.P99Ms, res.P999Ms, res.MaxMs)

	if o.Out != "" {
		line, err := json.Marshal(res)
		if err != nil {
			return err
		}
		f, err := os.OpenFile(o.Out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write(append(line, '\n')); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	// A run where nothing succeeded is a failed run — unless everything was
	// shed, which a saturation run (scripts/latency_bench.sh) does on
	// purpose and asserts on via the rejected count.
	if ok == 0 && rejected == 0 {
		return fmt.Errorf("no request succeeded: %v", firstErr)
	}
	return nil
}
