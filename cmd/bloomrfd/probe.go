package main

// Load-generation client mode: bloomrfd -probe-file fires batches from a
// key file at a running server and reports end-to-end throughput — the
// operational tool for comparing the JSON and binary codecs on real
// hardware (docs/performance.md) and for warming or soak-testing a
// deployment. The probe file is plain text: one decimal (or 0x-prefixed)
// key per line for insert/query, or two whitespace-separated bounds per
// line for query-range; blank lines and #-comments are skipped.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/wire"
)

// probeOptions carries the -probe-* flag values.
type probeOptions struct {
	File      string
	URL       string
	Filter    string
	Op        string // insert | query | query-range
	Codec     string // binary | json
	Batch     int
	Rounds    int
	AuthToken string

	// Open-loop mode (probe_openloop.go). TargetQPS > 0 replaces the
	// closed-loop rounds above with a fixed request schedule.
	TargetQPS float64
	Duration  time.Duration
	Out       string
}

// runProbe executes one probe session and prints a summary line.
func runProbe(o probeOptions) error {
	if o.Op != "insert" && o.Op != "query" && o.Op != "query-range" {
		return fmt.Errorf("-probe-op %q must be insert, query or query-range", o.Op)
	}
	if o.Codec != "binary" && o.Codec != "json" {
		return fmt.Errorf("-probe-codec %q must be binary or json", o.Codec)
	}
	if o.Batch < 1 || o.Batch > wire.MaxCount {
		return fmt.Errorf("-probe-batch %d out of range [1,%d]", o.Batch, wire.MaxCount)
	}
	if o.Rounds < 1 {
		return fmt.Errorf("-probe-rounds %d must be ≥ 1", o.Rounds)
	}
	keys, ranges, err := readProbeFile(o.File, o.Op == "query-range")
	if err != nil {
		return err
	}
	items := len(keys)
	if o.Op == "query-range" {
		items = len(ranges)
	}
	if items == 0 {
		return fmt.Errorf("probe file %s holds no usable lines", o.File)
	}

	if o.TargetQPS > 0 {
		return runOpenLoop(o, keys, ranges, os.Stdout)
	}

	p := &prober{opts: o, client: &http.Client{Timeout: 5 * time.Minute}}
	start := time.Now()
	for round := 0; round < o.Rounds; round++ {
		if o.Op == "query-range" {
			for lo := 0; lo < len(ranges); lo += o.Batch {
				if err := p.sendRanges(ranges[lo:min(lo+o.Batch, len(ranges))]); err != nil {
					return err
				}
			}
			continue
		}
		for lo := 0; lo < len(keys); lo += o.Batch {
			if err := p.sendKeys(keys[lo:min(lo+o.Batch, len(keys))]); err != nil {
				return err
			}
		}
	}
	elapsed := time.Since(start)
	total := items * o.Rounds
	summary := fmt.Sprintf(
		"bloomrfd probe: op=%s codec=%s filter=%s items=%d batches=%d rounds=%d elapsed=%s throughput=%.0f items/s",
		o.Op, o.Codec, o.Filter, total, p.batches, o.Rounds, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds())
	if o.Op != "insert" {
		summary += fmt.Sprintf(" positives=%d (%.1f%%)", p.positives, 100*float64(p.positives)/float64(total))
	}
	fmt.Println(summary)
	return nil
}

// prober holds one session's connection, buffers and counters.
type prober struct {
	opts      probeOptions
	client    *http.Client
	frame     []byte // reused binary request buffer
	batches   int
	positives int
}

// endpoint returns the target URL for the session's op.
func (p *prober) endpoint() string {
	path := map[string]string{"insert": "insert", "query": "query", "query-range": "query-range"}[p.opts.Op]
	return strings.TrimSuffix(p.opts.URL, "/") + "/v1/filters/" + p.opts.Filter + "/" + path
}

// post sends one request body and returns the response bytes.
func (p *prober) post(contentType string, body []byte) ([]byte, error) {
	req, err := http.NewRequest("POST", p.endpoint(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	if p.opts.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+p.opts.AuthToken)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("server answered %s: %s", resp.Status, bytes.TrimSpace(data))
	}
	p.batches++
	return data, nil
}

// sendKeys fires one insert/query batch and folds the response into the
// session counters.
func (p *prober) sendKeys(keys []uint64) error {
	if p.opts.Codec == "json" {
		body, err := json.Marshal(map[string]any{"keys": keys})
		if err != nil {
			return err
		}
		data, err := p.post("application/json", body)
		if err != nil {
			return err
		}
		if p.opts.Op == "query" {
			return p.countJSONResults(data, len(keys))
		}
		return nil
	}
	op := wire.OpQuery
	if p.opts.Op == "insert" {
		op = wire.OpInsert
	}
	p.frame = wire.AppendKeysRequest(p.frame[:0], op, keys)
	data, err := p.post(wire.ContentType, p.frame)
	if err != nil {
		return err
	}
	if p.opts.Op == "query" {
		return p.countBinaryResults(data, len(keys))
	}
	return nil
}

// sendRanges fires one query-range batch.
func (p *prober) sendRanges(ranges [][2]uint64) error {
	if p.opts.Codec == "json" {
		rs := make([]map[string]uint64, len(ranges))
		for i, r := range ranges {
			rs[i] = map[string]uint64{"lo": r[0], "hi": r[1]}
		}
		body, err := json.Marshal(map[string]any{"ranges": rs})
		if err != nil {
			return err
		}
		data, err := p.post("application/json", body)
		if err != nil {
			return err
		}
		return p.countJSONResults(data, len(ranges))
	}
	p.frame = wire.AppendRangesRequest(p.frame[:0], ranges)
	data, err := p.post(wire.ContentType, p.frame)
	if err != nil {
		return err
	}
	return p.countBinaryResults(data, len(ranges))
}

func (p *prober) countJSONResults(data []byte, want int) error {
	var resp struct {
		Results []bool `json:"results"`
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		return fmt.Errorf("decoding JSON response: %w", err)
	}
	if len(resp.Results) != want {
		return fmt.Errorf("response carries %d results, sent %d items", len(resp.Results), want)
	}
	for _, ok := range resp.Results {
		if ok {
			p.positives++
		}
	}
	return nil
}

func (p *prober) countBinaryResults(data []byte, want int) error {
	h, err := wire.ParseHeader(data)
	if err != nil {
		return fmt.Errorf("decoding binary response: %w", err)
	}
	out, err := wire.DecodeResult(h, data[wire.HeaderSize:], nil)
	if err != nil {
		return fmt.Errorf("decoding binary response: %w", err)
	}
	if len(out) != want {
		return fmt.Errorf("response carries %d results, sent %d items", len(out), want)
	}
	for _, ok := range out {
		if ok {
			p.positives++
		}
	}
	return nil
}

// readProbeFile parses the probe file into keys or, when wantRanges is
// set, [lo, hi] pairs.
func readProbeFile(path string, wantRanges bool) ([]uint64, [][2]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var (
		keys   []uint64
		ranges [][2]uint64
		lineNo int
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if wantRanges {
			if len(fields) != 2 {
				return nil, nil, fmt.Errorf("%s:%d: query-range needs \"lo hi\", got %q", path, lineNo, line)
			}
			lo, err1 := strconv.ParseUint(fields[0], 0, 64)
			hi, err2 := strconv.ParseUint(fields[1], 0, 64)
			if err1 != nil || err2 != nil {
				return nil, nil, fmt.Errorf("%s:%d: bounds must be unsigned 64-bit integers", path, lineNo)
			}
			ranges = append(ranges, [2]uint64{lo, hi})
			continue
		}
		if len(fields) != 1 {
			return nil, nil, fmt.Errorf("%s:%d: one key per line, got %q", path, lineNo, line)
		}
		k, err := strconv.ParseUint(fields[0], 0, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("%s:%d: %q is not an unsigned 64-bit integer", path, lineNo, fields[0])
		}
		keys = append(keys, k)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return keys, ranges, nil
}
