// Command bloomrf-bench regenerates the tables and figures of the bloomRF
// paper's evaluation (EDBT 2023). Each experiment prints the same rows or
// series the paper reports; the experiment list below indexes them by the
// paper's figure numbers.
//
// Usage:
//
//	bloomrf-bench -exp fig9 -scale medium
//	bloomrf-bench -exp all -scale small -csv
//
// Experiments: fig1, fig5, fig8, fig9, fig9d, fig10, fig11, fig12a,
// fig12b, fig12c, fig12d, fig12s, fig12e, fig12f, fig12g, sect6, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/workload"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment to run (see package doc; 'all' runs everything)")
		scaleFl = flag.String("scale", "medium", "experiment scale: small | medium | paper")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		dir     = flag.String("dir", "", "scratch directory for LSM experiments (default: temp)")
	)
	flag.Parse()
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	scale, err := harness.ParseScale(*scaleFl)
	if err != nil {
		fatal(err)
	}
	scratch := *dir
	if scratch == "" {
		scratch, err = os.MkdirTemp("", "bloomrf-bench-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(scratch)
	} else if err := os.MkdirAll(scratch, 0o755); err != nil {
		fatal(err)
	}

	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = []string{"fig8", "sect6", "fig5", "fig1", "fig11", "fig9", "fig9d",
			"fig10", "fig12a", "fig12b", "fig12c", "fig12d", "fig12s", "fig12e", "fig12f", "fig12g"}
	}
	allDists := []workload.Distribution{workload.Uniform, workload.Normal, workload.Zipfian}
	for _, name := range names {
		start := time.Now()
		var tables []*harness.Table
		var err error
		switch strings.TrimSpace(name) {
		case "fig8":
			tables = harness.Fig8()
		case "sect6":
			tables = []*harness.Table{harness.Sect6Table()}
		case "fig5":
			tables = harness.Fig5(scale)
		case "fig1":
			tables = harness.Fig1(scale)
		case "fig11":
			tables = harness.Fig11(scale, allDists, allDists)
		case "fig9":
			tables, err = harness.Fig9(scale, filepath.Join(scratch, "fig9"))
		case "fig9d":
			tables, err = harness.Fig9D(scale, filepath.Join(scratch, "fig9d"))
		case "fig10":
			tables, err = harness.Fig10(scale, filepath.Join(scratch, "fig10"))
		case "fig12a":
			tables = harness.Fig12A(scale)
		case "fig12b":
			tables = harness.Fig12B(scale)
		case "fig12c":
			tables, err = harness.Fig12C(scale, filepath.Join(scratch, "fig12c"))
		case "fig12d":
			tables = harness.Fig12D(scale)
		case "fig12s":
			tables = harness.Fig12Strings(scale)
		case "fig12e":
			tables = harness.Fig12E(scale)
		case "fig12f":
			tables = harness.Fig12F(scale)
		case "fig12g":
			tables, err = harness.Fig12G(scale, filepath.Join(scratch, "fig12g"))
		default:
			fatal(fmt.Errorf("unknown experiment %q", name))
		}
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		for _, t := range tables {
			if *csv {
				fmt.Printf("# %s\n", t.Title)
				t.RenderCSV(os.Stdout)
			} else {
				t.Render(os.Stdout)
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %s]\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bloomrf-bench:", err)
	os.Exit(1)
}
