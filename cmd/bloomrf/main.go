// Command bloomrf is a small CLI around the bloomRF filter: build a filter
// from a file of keys, save it, and run point/range queries against it.
//
// Usage:
//
//	bloomrf build -keys keys.txt -out filter.brf -bits 16 -maxrange 1e9
//	bloomrf query -filter filter.brf -point 42
//	bloomrf query -filter filter.brf -lo 42 -hi 4711
//	bloomrf info  -filter filter.brf
//
// The key file holds one unsigned 64-bit integer per line (decimal or
// 0x-hex); blank lines and #-comments are skipped.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		cmdBuild(os.Args[2:])
	case "query":
		cmdQuery(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bloomrf build|query|info [flags]  (run a subcommand with -h for details)")
	os.Exit(2)
}

func cmdBuild(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	keysPath := fs.String("keys", "", "input file: one uint64 key per line")
	out := fs.String("out", "filter.brf", "output filter file")
	bits := fs.Float64("bits", 16, "bits per key")
	maxRange := fs.Float64("maxrange", 0, "largest query range to tune for (0 = basic filter)")
	fs.Parse(args)
	if *keysPath == "" {
		fatal(fmt.Errorf("build: -keys required"))
	}
	keys, err := readKeys(*keysPath)
	if err != nil {
		fatal(err)
	}
	var f *bloomrf.Filter
	if *maxRange > 0 {
		var tun bloomrf.Tuning
		f, tun, err = bloomrf.NewTuned(bloomrf.Options{
			ExpectedKeys: uint64(len(keys)), BitsPerKey: *bits, MaxRange: *maxRange,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("advisor: exact level %d, Δ=%v, predicted point FPR %.4f, range FPR %.4f\n",
			tun.ExactLevel, tun.LevelDistance, tun.PointFPR, tun.RangeFPR)
	} else {
		f = bloomrf.New(uint64(len(keys)), *bits)
	}
	for _, k := range keys {
		f.Insert(k)
	}
	blob, err := f.MarshalBinary()
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("built %s: %d keys, %d bits (%.2f bits/key), k=%d\n",
		*out, len(keys), f.SizeBits(), float64(f.SizeBits())/float64(len(keys)), f.K())
}

func cmdQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	filterPath := fs.String("filter", "filter.brf", "filter file")
	point := fs.String("point", "", "point query key")
	lo := fs.String("lo", "", "range lower bound")
	hi := fs.String("hi", "", "range upper bound")
	fs.Parse(args)
	f := loadFilter(*filterPath)
	switch {
	case *point != "":
		k, err := parseKey(*point)
		if err != nil {
			fatal(err)
		}
		fmt.Println(verdict(f.MayContain(k)))
	case *lo != "" && *hi != "":
		l, err := parseKey(*lo)
		if err != nil {
			fatal(err)
		}
		h, err := parseKey(*hi)
		if err != nil {
			fatal(err)
		}
		fmt.Println(verdict(f.MayContainRange(l, h)))
	default:
		fatal(fmt.Errorf("query: need -point or both -lo and -hi"))
	}
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	filterPath := fs.String("filter", "filter.brf", "filter file")
	fs.Parse(args)
	f := loadFilter(*filterPath)
	fmt.Printf("bloomRF filter: %d bits (%d KiB), %d probabilistic layers\n",
		f.SizeBits(), f.SizeBits()/8/1024, f.K())
}

func verdict(maybe bool) string {
	if maybe {
		return "maybe (present unless a false positive)"
	}
	return "no (definitely absent)"
}

func loadFilter(path string) *bloomrf.Filter {
	blob, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	f, err := bloomrf.Unmarshal(blob)
	if err != nil {
		fatal(err)
	}
	return f
}

func readKeys(path string) ([]uint64, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	var keys []uint64
	sc := bufio.NewScanner(fh)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		k, err := parseKey(s)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		keys = append(keys, k)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("%s: no keys", path)
	}
	return keys, nil
}

func parseKey(s string) (uint64, error) {
	return strconv.ParseUint(strings.TrimPrefix(s, "0x"), base(s), 64)
}

func base(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bloomrf:", err)
	os.Exit(1)
}
