package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles the command once per test binary.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "bloomrf")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	return string(out), err
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	keysPath := filepath.Join(dir, "keys.txt")
	filterPath := filepath.Join(dir, "f.brf")
	keyFile := "# comment line\n42\n4711\n0xдеад\n"
	// First with a bad hex line to check the error path.
	if err := os.WriteFile(keysPath, []byte(keyFile), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := run(t, bin, "build", "-keys", keysPath, "-out", filterPath); err == nil {
		t.Fatal("bad key line accepted")
	}
	if err := os.WriteFile(keysPath, []byte("# keys\n42\n4711\n0xff\n1000000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, bin, "build", "-keys", keysPath, "-out", filterPath, "-bits", "16", "-maxrange", "1e6")
	if err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	if !strings.Contains(out, "advisor") || !strings.Contains(out, "4 keys") {
		t.Fatalf("unexpected build output: %s", out)
	}

	// Point queries.
	out, err = run(t, bin, "query", "-filter", filterPath, "-point", "42")
	if err != nil || !strings.Contains(out, "maybe") {
		t.Fatalf("stored key query: %v %q", err, out)
	}
	out, err = run(t, bin, "query", "-filter", filterPath, "-point", "123456789")
	if err != nil || !strings.Contains(out, "definitely absent") {
		t.Fatalf("absent key query: %v %q", err, out)
	}

	// Range queries.
	out, err = run(t, bin, "query", "-filter", filterPath, "-lo", "4000", "-hi", "5000")
	if err != nil || !strings.Contains(out, "maybe") {
		t.Fatalf("range around 4711: %v %q", err, out)
	}
	out, err = run(t, bin, "query", "-filter", filterPath, "-lo", "2000", "-hi", "3000")
	if err != nil || !strings.Contains(out, "definitely absent") {
		t.Fatalf("empty range: %v %q", err, out)
	}

	// Info.
	out, err = run(t, bin, "info", "-filter", filterPath)
	if err != nil || !strings.Contains(out, "bloomRF filter") {
		t.Fatalf("info: %v %q", err, out)
	}

	// Error paths.
	if _, err := run(t, bin, "query", "-filter", filterPath); err == nil {
		t.Fatal("query without predicate accepted")
	}
	if _, err := run(t, bin, "query", "-filter", filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing filter file accepted")
	}
	if _, err := run(t, bin, "nonsense"); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}

func TestParseKey(t *testing.T) {
	cases := map[string]uint64{
		"0":      0,
		"42":     42,
		"0xff":   255,
		"0xDEAD": 0xDEAD,
	}
	for in, want := range cases {
		got, err := parseKey(in)
		if err != nil || got != want {
			t.Errorf("parseKey(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "abc", "-1", "0x", "99999999999999999999999"} {
		if _, err := parseKey(bad); err == nil {
			t.Errorf("parseKey(%q) accepted", bad)
		}
	}
}
