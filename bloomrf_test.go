package bloomrf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuickstart(t *testing.T) {
	f := New(1000, 16)
	f.Insert(42)
	if !f.MayContain(42) {
		t.Fatal("lost key 42")
	}
	if !f.MayContainRange(40, 100) {
		t.Fatal("range [40,100] should contain 42")
	}
	if f.MayContainRange(100_000, 200_000) {
		t.Log("distant range answered maybe (allowed, improbable)")
	}
}

func TestTunedAPI(t *testing.T) {
	f, tun, err := NewTuned(Options{ExpectedKeys: 10_000, BitsPerKey: 16, MaxRange: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if tun.ExactLevel == 0 || len(tun.LevelDistance) == 0 {
		t.Errorf("tuning report incomplete: %+v", tun)
	}
	if tun.PointFPR > tun.RangeFPR+1e-12 {
		t.Errorf("point FPR above range FPR: %+v", tun)
	}
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 10_000)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Insert(keys[i])
	}
	for _, k := range keys[:1000] {
		if !f.MayContain(k) {
			t.Fatal("tuned filter lost a key")
		}
	}
}

func TestFloatAPI(t *testing.T) {
	f := New(1000, 18)
	vals := []float64{-273.15, -1.5, 0, 3.14159, 6.02e23}
	for _, v := range vals {
		f.InsertFloat64(v)
	}
	for _, v := range vals {
		if !f.MayContainFloat64(v) {
			t.Fatalf("lost float %v", v)
		}
		if !f.MayContainFloat64Range(v-0.001, v+0.001) {
			t.Fatalf("range around %v missed", v)
		}
	}
	prop := func(v float64) bool {
		if v != v {
			return true // NaN
		}
		return DecodeFloat64(EncodeFloat64(v)) == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntAPI(t *testing.T) {
	f := New(100, 18)
	f.InsertInt64(-5)
	f.InsertInt64(7)
	if !f.MayContainInt64Range(-10, -1) {
		t.Fatal("negative range missed")
	}
	if !f.MayContainInt64Range(-10, 10) {
		t.Fatal("sign-crossing range missed")
	}
}

func TestStringAPI(t *testing.T) {
	f := New(100, 18)
	words := []string{"anchovy", "barnacle", "cuttlefish"}
	for _, w := range words {
		f.InsertString(w)
	}
	for _, w := range words {
		if !f.MayContainString(w) {
			t.Fatalf("lost %q", w)
		}
	}
	if !f.MayContainStringRange("a", "b") {
		t.Fatal("string range [a,b] should cover anchovy")
	}
}

func TestSerializationAPI(t *testing.T) {
	f := New(500, 14)
	for i := uint64(0); i < 500; i++ {
		f.Insert(i * 1000)
	}
	blob, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		if !g.MayContain(i * 1000) {
			t.Fatal("round trip lost a key")
		}
	}
	if _, err := Unmarshal(blob[:10]); err == nil {
		t.Fatal("truncated blob accepted")
	}
}

func TestMultiAttrAPI(t *testing.T) {
	m, err := NewMultiAttr(MultiAttrOptions{ExpectedKeys: 1000, BitsPerKey: 20})
	if err != nil {
		t.Fatal(err)
	}
	m.Insert(42, 4711)
	if !m.MayContain(42, 4711) {
		t.Fatal("lost tuple")
	}
	if !m.MayContainARange(0, 100, 4711) {
		t.Fatal("A<=100 AND B=4711 should hit")
	}
	if !m.MayContainBRange(42, 4000, 5000) {
		t.Fatal("A=42 AND B in [4000,5000] should hit")
	}
	if m.SizeBits() == 0 {
		t.Fatal("zero size")
	}
}

func TestNoFalseNegativesProperty(t *testing.T) {
	f := New(2000, 14)
	rng := rand.New(rand.NewSource(2))
	keys := make([]uint64, 2000)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Insert(keys[i])
	}
	prop := func(i uint16, span uint32) bool {
		k := keys[int(i)%len(keys)]
		lo := k - min(k, uint64(span))
		hi := k + min(^uint64(0)-k, uint64(span))
		return f.MayContain(k) && f.MayContainRange(lo, hi)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchAPI checks the public batch wrappers: equivalence with the
// single-key calls, the length-mismatch panic, and Stats plumbing.
func TestBatchAPI(t *testing.T) {
	f := New(10_000, 16)
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, 5_000)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	f.InsertBatch(keys)

	queries := make([]uint64, 2_000)
	for i := range queries {
		if i%2 == 0 {
			queries[i] = keys[rng.Intn(len(keys))]
		} else {
			queries[i] = rng.Uint64()
		}
	}
	out := make([]bool, len(queries))
	f.MayContainBatch(queries, out)
	for j, x := range queries {
		if want := f.MayContain(x); out[j] != want {
			t.Fatalf("MayContainBatch[%d] = %v, single = %v", j, out[j], want)
		}
	}

	ranges := make([][2]uint64, 500)
	for i := range ranges {
		k := keys[rng.Intn(len(keys))]
		ranges[i] = [2]uint64{k - min(k, 50), k}
	}
	rout := make([]bool, len(ranges))
	f.MayContainRangeBatch(ranges, rout)
	for j, r := range ranges {
		if want := f.MayContainRange(r[0], r[1]); rout[j] != want {
			t.Fatalf("MayContainRangeBatch[%d] = %v, single = %v", j, rout[j], want)
		}
		if !rout[j] {
			t.Fatalf("range %v covers an inserted key but answered false", r)
		}
	}

	// Empty batches are no-ops; mismatched lengths panic.
	f.InsertBatch(nil)
	f.MayContainBatch(nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("MayContainBatch length mismatch should panic")
		}
	}()
	f.MayContainBatch(queries, make([]bool, 1))
}

func TestStatsAPI(t *testing.T) {
	f := New(1_000, 16)
	if st := f.Stats(); st.SetBits != 0 || st.SizeBits == 0 || st.K == 0 {
		t.Fatalf("empty-filter stats: %+v", st)
	}
	f.InsertBatch([]uint64{1, 2, 3})
	st := f.Stats()
	if st.SetBits == 0 || len(st.FillRatios) == 0 {
		t.Fatalf("stats after insert: %+v", st)
	}
}
